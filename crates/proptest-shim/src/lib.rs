//! Offline drop-in replacement for the subset of the `proptest` crate API
//! this workspace uses.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! maps the `proptest` dev-dependency name onto this crate via a Cargo
//! package rename; test modules keep `use proptest::prelude::*;` unchanged.
//!
//! Provided surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for half-open
//!   numeric ranges and tuples up to arity 5,
//! * [`collection::vec`] with fixed or ranged lengths,
//! * [`test_runner::TestRunner`] (`deterministic`, `run`) plus
//!   [`test_runner::ProptestConfig`] (`with_cases`, `PROPTEST_CASES` env
//!   override),
//! * the [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: generation streams differ, and failing cases
//! are reported but **not shrunk** — acceptable for a deterministic offline
//! test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            let u = rng.unit_f64();
            let v = self.start + (self.end - self.start) * u;
            if v >= self.end {
                f64::from_bits(self.end.to_bits() - 1)
            } else {
                v
            }
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a half-open
    /// `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-length range");
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span) as usize
        }
    }

    /// Strategy generating `Vec`s of `element` values with lengths drawn
    /// from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution: configuration, RNG, runner, and error types.
pub mod test_runner {
    use crate::strategy::Strategy;

    /// Deterministic generator backing all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator with the given seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration; only the case count is configurable.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// A single case's failure, raised by `prop_assert!`.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Overall property failure returned by [`TestRunner::run`].
    #[derive(Clone, Debug)]
    pub enum TestError {
        /// Some case failed; carries the case index and its message.
        Fail(String),
    }

    /// Drives a property over many generated cases.
    ///
    /// Unlike upstream proptest this runner does not shrink failures; it
    /// reports the first failing case's message and index.
    pub struct TestRunner {
        rng: TestRng,
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with a fixed seed, so failures reproduce exactly.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: TestRng::new(0x5EED_5EED_5EED_5EED),
                config: ProptestConfig::default(),
            }
        }

        /// A deterministic runner with an explicit configuration.
        pub fn with_config(config: ProptestConfig) -> Self {
            TestRunner {
                rng: TestRng::new(0x5EED_5EED_5EED_5EED),
                config,
            }
        }

        /// Runs `test` against `config.cases` values drawn from `strategy`.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                if let Err(TestCaseError::Fail(msg)) = test(value) {
                    return Err(TestError::Fail(format!(
                        "property failed at case {case}/{}: {msg}",
                        self.config.cases
                    )));
                }
            }
            Ok(())
        }
    }
}

/// Asserts a condition inside a property, failing the current case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    // `if cond {} else { fail }` rather than `if !cond { fail }`: conditions
    // are often float comparisons, and negating a partial order trips
    // `clippy::neg_cmp_op_on_partial_ord` at every expansion site.
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::with_config($config);
            runner
                .run(&($($strat,)+), |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                })
                .unwrap();
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut runner = TestRunner::deterministic();
        runner
            .run(&(0u64..100, -2.0..2.0f64, 3usize..7), |(a, b, c)| {
                prop_assert!(a < 100);
                prop_assert!((-2.0..2.0).contains(&b));
                prop_assert!((3..7).contains(&c));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn vec_and_map_compose() {
        let mut runner = TestRunner::deterministic();
        let strat = crate::collection::vec(0.0..1.0f64, 1..9).prop_map(|v| (v.len(), v));
        runner
            .run(&strat, |(n, v)| {
                prop_assert_eq!(n, v.len());
                prop_assert!((1..9).contains(&n));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn failures_report_case_and_message() {
        let mut runner = TestRunner::with_config(ProptestConfig::with_cases(5));
        let err = runner.run(&(0u32..10,), |(_x,)| {
            prop_assert!(false, "always fails");
            Ok(())
        });
        match err {
            Err(crate::test_runner::TestError::Fail(msg)) => {
                assert!(msg.contains("always fails"), "{msg}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(
            x in -5.0..5.0f64,
            n in 1usize..4,
        ) {
            prop_assert!(x.abs() <= 5.0);
            prop_assert!((1..4).contains(&n));
        }
    }
}
