//! Micro-benchmarks of one full EM round (E-step + convex M-step) and of
//! the whole edge fit — the numbers behind experiment E7's deployment
//! claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dre_bench::{standard_family, standard_learner_config};
use dre_bayes::MixturePrior;
use dre_linalg::Matrix;
use dro_edge::{EdgeLearner, EdgeLearnerConfig};

fn bench_em(c: &mut Criterion) {
    let (family, mut rng) = standard_family(11);
    // A prior built from the true centers keeps the benchmark free of
    // Gibbs-fit noise.
    let comps: Vec<(f64, Vec<f64>, Matrix)> = family
        .cluster_centers()
        .iter()
        .map(|ctr| (1.0, ctr.clone(), Matrix::from_diag(&[0.1; 6])))
        .collect();
    let prior = MixturePrior::new(comps).unwrap();

    let mut group = c.benchmark_group("em");
    for &n in &[20usize, 100, 500] {
        let task = family.sample_task(&mut rng);
        let data = task.generate(n, &mut rng);

        let one_round = EdgeLearnerConfig {
            em_rounds: 1,
            ..standard_learner_config()
        };
        let learner_one = EdgeLearner::new(one_round, prior.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("single_round", n), &n, |b, _| {
            b.iter(|| black_box(learner_one.fit(&data).unwrap()))
        });

        let full = EdgeLearner::new(standard_learner_config(), prior.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("full_fit", n), &n, |b, _| {
            b.iter(|| black_box(full.fit(&data).unwrap()))
        });

        // E-step alone: responsibilities + surrogate assembly.
        let theta = vec![0.1; 6];
        group.bench_with_input(BenchmarkId::new("e_step", n), &n, |b, _| {
            b.iter(|| {
                let r = prior.responsibilities(black_box(&theta));
                black_box(prior.em_surrogate(&r).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
