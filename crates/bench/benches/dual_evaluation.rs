//! Micro-benchmarks of the Wasserstein dual objective — the hot loop of
//! every M-step (exercised once per L-BFGS iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dre_models::{LinearModel, LogisticLoss};
use dre_optim::Objective;
use dre_prob::{seeded_rng, MvNormal};
use dre_robust::{WassersteinBall, WassersteinDualObjective};

fn dataset(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(7);
    let gen = MvNormal::isotropic(vec![0.0; d], 1.0).unwrap();
    let xs = gen.sample_n(&mut rng, n);
    let ys = xs
        .iter()
        .map(|x| if x[0] >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    (xs, ys)
}

fn bench_dual(c: &mut Criterion) {
    let mut group = c.benchmark_group("wasserstein_dual");
    for &(n, d) in &[(50usize, 5usize), (200, 5), (200, 20), (1000, 20)] {
        let (xs, ys) = dataset(n, d);
        let ball = WassersteinBall::new(0.1, 1.0).unwrap();
        let obj = WassersteinDualObjective::new(&xs, &ys, LogisticLoss, ball).unwrap();
        let packed: Vec<f64> = (0..d + 2).map(|i| 0.1 * i as f64).collect();
        let model = LinearModel::from_packed(&packed[..d + 1]);

        group.bench_with_input(
            BenchmarkId::new("value_and_gradient", format!("n{n}_d{d}")),
            &n,
            |bench, _| bench.iter(|| black_box(obj.value_and_gradient(&packed))),
        );
        group.bench_with_input(
            BenchmarkId::new("exact_robust_risk", format!("n{n}_d{d}")),
            &n,
            |bench, _| bench.iter(|| black_box(obj.exact_robust_risk(&model))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dual);
criterion_main!(benches);
