//! Micro-benchmarks of the cloud-side DP fitting: collapsed Gibbs vs.
//! truncated variational EM, per sweep and end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dre_bayes::{DpNiwGibbs, GibbsConfig, VariationalConfig, VariationalDpGmm};
use dre_prob::{seeded_rng, MvNormal, NormalInverseWishart};

fn clustered_params(m: usize, d: usize) -> Vec<Vec<f64>> {
    let mut rng = seeded_rng(5);
    let centers = [
        MvNormal::isotropic(vec![4.0; d], 0.05).unwrap(),
        MvNormal::isotropic(vec![-4.0; d], 0.05).unwrap(),
        MvNormal::isotropic(vec![0.0; d], 0.05).unwrap(),
    ];
    (0..m)
        .map(|i| centers[i % centers.len()].sample(&mut rng))
        .collect()
}

fn bench_dp_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_fit");
    group.sample_size(10);
    for &m in &[20usize, 60, 120] {
        let d = 6;
        let data = clustered_params(m, d);
        let base = NormalInverseWishart::vague(d).unwrap();

        group.bench_with_input(BenchmarkId::new("gibbs_5_sweeps", m), &m, |b, _| {
            let gibbs = DpNiwGibbs::new(
                base.clone(),
                GibbsConfig {
                    alpha: 1.0,
                    burn_in: 0,
                    sweeps: 5,
                    alpha_prior: None,
                    exact_recompute: false,
                },
            )
            .unwrap();
            let mut rng = seeded_rng(9);
            b.iter(|| black_box(gibbs.fit(&data, &mut rng).unwrap()))
        });

        group.bench_with_input(BenchmarkId::new("variational_fit", m), &m, |b, _| {
            let vb = VariationalDpGmm::new(VariationalConfig {
                alpha: 1.0,
                truncation: 15,
                max_iters: 50,
                ..VariationalConfig::default()
            })
            .unwrap();
            let mut rng = seeded_rng(9);
            b.iter(|| black_box(vb.fit(&data, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_fitting);
criterion_main!(benches);
