//! Micro-benchmarks comparing the workspace's solvers on the convex
//! objective shapes the M-step produces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dre_linalg::Matrix;
use dre_models::{ErmObjective, LogisticLoss};
use dre_optim::{
    Adam, GradientDescent, Lbfgs, Prox, ProximalGradient, QuadraticObjective, StopCriteria,
};
use dre_prob::{seeded_rng, MvNormal};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");

    // Ill-conditioned quadratic.
    let d = 20;
    let diag: Vec<f64> = (0..d).map(|i| 1.0 + (i as f64) * 10.0).collect();
    let quad = QuadraticObjective::new(Matrix::from_diag(&diag), vec![1.0; d], 0.0);
    let start = vec![5.0; d];
    let stop = StopCriteria {
        max_iters: 500,
        grad_tol: 1e-6,
        f_tol: 0.0,
    };

    group.bench_function(BenchmarkId::new("quadratic", "lbfgs"), |b| {
        let solver = Lbfgs::new(stop);
        b.iter(|| black_box(solver.minimize(&quad, &start).unwrap()))
    });
    group.bench_function(BenchmarkId::new("quadratic", "gd"), |b| {
        let solver = GradientDescent::new(stop);
        b.iter(|| black_box(solver.minimize(&quad, &start).unwrap()))
    });
    group.bench_function(BenchmarkId::new("quadratic", "adam"), |b| {
        let solver = Adam::new(stop, 0.3).unwrap();
        b.iter(|| black_box(solver.minimize(&quad, &start).unwrap()))
    });
    group.bench_function(BenchmarkId::new("quadratic", "fista_l1"), |b| {
        let solver = ProximalGradient::new(stop, Prox::L1(0.01)).accelerated();
        b.iter(|| black_box(solver.minimize(&quad, &start).unwrap()))
    });

    // Logistic ERM at the experiment scale.
    let mut rng = seeded_rng(3);
    let gen = MvNormal::isotropic(vec![0.0; 10], 1.0).unwrap();
    let xs = gen.sample_n(&mut rng, 200);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| if x[0] + 0.5 * x[1] >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    let erm = ErmObjective::new(&xs, &ys, LogisticLoss, 1e-3).unwrap();
    let zero = vec![0.0; 11];
    group.bench_function(BenchmarkId::new("logistic_erm", "lbfgs"), |b| {
        let solver = Lbfgs::new(stop);
        b.iter(|| black_box(solver.minimize(&erm, &zero).unwrap()))
    });
    group.bench_function(BenchmarkId::new("logistic_erm", "gd"), |b| {
        let solver = GradientDescent::new(StopCriteria {
            max_iters: 200,
            ..stop
        });
        b.iter(|| black_box(solver.minimize(&erm, &zero).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
