//! Micro-benchmarks of the linear-algebra kernels the probabilistic and
//! optimization layers sit on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dre_linalg::{Cholesky, Lu, Matrix, SymEigen};

fn spd(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
        }
        m[(i, i)] += n as f64;
    }
    m
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    for &n in &[8usize, 32, 128] {
        let a = spd(n);
        let b = spd(n);
        let x = vec![1.0; n];

        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("matvec", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matvec(&x).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &n, |bench, _| {
            bench.iter(|| black_box(Cholesky::new(&a).unwrap()))
        });
        let chol = Cholesky::new(&a).unwrap();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |bench, _| {
            bench.iter(|| black_box(chol.solve(&x).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("lu", n), &n, |bench, _| {
            bench.iter(|| black_box(Lu::new(&a).unwrap()))
        });
        if n <= 32 {
            group.bench_with_input(BenchmarkId::new("sym_eigen", n), &n, |bench, _| {
                bench.iter(|| black_box(SymEigen::new(&a).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
