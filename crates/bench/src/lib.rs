//! Shared experiment plumbing: standard setups, table rendering and JSON
//! result output.
//!
//! Every experiment binary (`e1_…` … `e12_…`) builds on these helpers so
//! setups stay comparable across experiments and EXPERIMENTS.md can be
//! regenerated mechanically. Results are printed as aligned text tables and
//! mirrored as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_prob::seeded_rng;
use dro_edge::{CloudKnowledge, EdgeLearnerConfig};
use rand::rngs::StdRng;

pub mod degraded;
pub mod json;

/// The workspace-standard task family every experiment defaults to:
/// 5 features, 3 latent clusters, mild label noise.
pub fn standard_family_config() -> TaskFamilyConfig {
    TaskFamilyConfig {
        dim: 5,
        num_clusters: 3,
        cluster_separation: 4.0,
        within_cluster_std: 0.25,
        label_noise: 0.02,
        steepness: 3.0,
    }
}

/// Builds the standard family with a deterministic RNG; returns both.
///
/// # Panics
///
/// Panics only if the standard configuration were invalid (it is not).
pub fn standard_family(seed: u64) -> (TaskFamily, StdRng) {
    let mut rng = seeded_rng(seed);
    let family = TaskFamily::generate(&standard_family_config(), &mut rng)
        .expect("standard config is valid");
    (family, rng)
}

/// Builds cloud knowledge from the family with the experiment-standard
/// settings (`M` historical tasks, 400 samples each, Gibbs fit).
///
/// # Panics
///
/// Panics on pipeline failure — experiments treat that as fatal.
pub fn standard_cloud(
    family: &TaskFamily,
    num_tasks: usize,
    alpha: f64,
    rng: &mut StdRng,
) -> CloudKnowledge {
    CloudKnowledge::from_family(family, num_tasks, 400, alpha, rng)
        .expect("cloud pipeline failed")
}

/// The learner configuration the experiments sweep around.
pub fn standard_learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        epsilon: 0.1,
        kappa: 1.0,
        rho: 1.0,
        em_rounds: 15,
        em_tol: 1e-7,
        solver_iters: 200,
        multi_start: true,
    }
}

/// An aligned text table with a JSON mirror.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier (e.g. `"E1"`).
    pub id: String,
    /// One-line description of what the table shows.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (formatted values).
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout and mirrors it as
    /// `results/<id lowercase>.json` (directory created on demand; I/O
    /// failures are reported to stderr but do not abort the experiment).
    pub fn emit(&self) {
        print!("{}", self.render());
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results dir: {e}");
            return;
        }
        let path = dir.join(format!("{}.json", self.id.to_lowercase()));
        if let Err(e) = std::fs::write(&path, self.to_json()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }

    /// Serializes the table as pretty-printed JSON (same shape the old
    /// serde derive produced).
    pub fn to_json(&self) -> String {
        use crate::json::JsonValue;
        JsonValue::object([
            ("id", JsonValue::from(self.id.as_str())),
            ("title", JsonValue::from(self.title.as_str())),
            (
                "headers",
                JsonValue::array(self.headers.iter().map(|h| JsonValue::from(h.as_str()))),
            ),
            (
                "rows",
                JsonValue::array(self.rows.iter().map(|row| {
                    JsonValue::array(row.iter().map(|c| JsonValue::from(c.as_str())))
                })),
            ),
        ])
        .pretty()
    }
}

/// Concentration-scaled Wasserstein radius `ε_n = c / √n`.
///
/// Measure-concentration results for Wasserstein balls shrink the radius
/// needed to cover the true distribution as local data accumulates; the
/// sample-size sweeps use this schedule so the robust methods converge to
/// the oracle instead of paying a fixed conservatism premium forever.
pub fn concentration_radius(c: f64, n: usize) -> f64 {
    c / (n.max(1) as f64).sqrt()
}

/// Formats an accuracy ± stderr pair.
pub fn fmt_acc(mean: f64, se: f64) -> String {
    format!("{:.3}±{:.3}", mean, se)
}

/// Formats a float with 4 significant decimals.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("E0", "smoke", &["method", "acc"]);
        t.push_row(vec!["erm".into(), "0.81".into()]);
        t.push_row(vec!["dro+dp".into(), "0.93".into()]);
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("dro+dp"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("E0", "smoke", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn standard_setup_builds() {
        let (family, mut rng) = standard_family(7);
        assert_eq!(family.config().dim, 5);
        let task = family.sample_task(&mut rng);
        assert_eq!(task.dim(), 5);
        assert!(standard_learner_config().validate().is_ok());
        assert_eq!(fmt_acc(0.5, 0.01), "0.500±0.010");
        assert_eq!(fmt_f(1.23456), "1.2346");
    }
}
