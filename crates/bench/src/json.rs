//! Minimal JSON writer used for result mirrors and `BENCH_parallel.json`.
//!
//! The workspace is built offline (no serde), so the handful of places that
//! emit JSON build a [`JsonValue`] tree and pretty-print it. Only the types
//! the experiment outputs need are supported.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number; non-finite values serialize as `null` (matching
    /// what serde_json does for `f64::NAN` under its default behaviour).
    Number(f64),
    /// A string (escaped on output).
    String(String),
    /// An ordered list.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> Self {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close_pad);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn escapes_and_nests() {
        let v = JsonValue::object([
            ("name", JsonValue::from("say \"hi\"\n")),
            ("speedup", JsonValue::from(2.5)),
            ("threads", JsonValue::from(8usize)),
            ("ok", JsonValue::from(true)),
            (
                "rows",
                JsonValue::array([JsonValue::Null, JsonValue::from(1.0)]),
            ),
        ]);
        let s = v.pretty();
        assert!(s.contains("\\\"hi\\\"\\n"), "{s}");
        assert!(s.contains("\"speedup\": 2.5"), "{s}");
        assert!(s.contains("\"threads\": 8"), "{s}");
        assert!(s.contains("null"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::from(3.0).pretty(), "3\n");
        assert_eq!(JsonValue::from(0.25).pretty(), "0.25\n");
    }
}
