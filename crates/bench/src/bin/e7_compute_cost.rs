//! E7 — edge-side compute cost per method.
//!
//! Measures wall-clock training time and (where applicable) iteration
//! counts at a fixed sample size. Expected shape: the paper's method pays a
//! small constant factor over plain ERM (a few convex solves instead of
//! one) — cheap enough for edge hardware, which is the deployment claim.

use std::time::Instant;

use dre_bench::{fmt_f, standard_cloud, standard_family, standard_learner_config, Table};
use dro_edge::{baselines, EdgeLearner};

fn main() {
    let (family, mut rng) = standard_family(707);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let config = standard_learner_config();
    let trials = 10;
    let n = 50;

    let mut table = Table::new(
        "E7",
        "edge-side training cost (n = 50, mean of 10 trials)",
        &["method", "wall-ms", "em-rounds", "relative"],
    );

    let mut erm_ms = 0.0;
    let mut dro_ms = 0.0;
    let mut map_ms = 0.0;
    let mut drodp_ms = 0.0;
    let mut em_rounds = 0usize;

    for _ in 0..trials {
        let task = family.sample_task(&mut rng);
        let train = task.generate(n, &mut rng);

        let t0 = Instant::now();
        let _ = baselines::fit_local_erm(&train, 1e-3).expect("erm");
        erm_ms += t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let _ = baselines::fit_dro_only(&train, config.epsilon, config.kappa).expect("dro");
        dro_ms += t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let _ = baselines::fit_map_only(&train, cloud.prior(), config.rho, config.em_rounds)
            .expect("map");
        map_ms += t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let fit = EdgeLearner::new(config, cloud.prior().clone())
            .expect("config")
            .fit(&train)
            .expect("fit");
        drodp_ms += t0.elapsed().as_secs_f64() * 1e3;
        em_rounds += fit.em_rounds;
    }

    let t = trials as f64;
    let (erm_ms, dro_ms, map_ms, drodp_ms) =
        (erm_ms / t, dro_ms / t, map_ms / t, drodp_ms / t);
    for (name, ms, rounds) in [
        ("local-erm", erm_ms, String::from("-")),
        ("dro-only", dro_ms, String::from("-")),
        ("map-only", map_ms, format!("{}", config.em_rounds)),
        (
            "dro+dp",
            drodp_ms,
            format!("{:.1}", em_rounds as f64 / t),
        ),
    ] {
        table.push_row(vec![
            name.to_string(),
            fmt_f(ms),
            rounds,
            format!("{:.1}x", ms / erm_ms.max(1e-9)),
        ]);
    }
    table.emit();
}
