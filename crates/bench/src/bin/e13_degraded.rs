//! E13 — graceful degradation under link faults: fleet accuracy and the
//! degradation-ladder mode mix as a seeded fault injector sweeps from a
//! healthy link to a fully dead one.
//!
//! A prior-covered fleet of edge devices runs fetch→fit→report rounds
//! through the real `EdgeRuntime` (circuit breaker, stale-prior cache,
//! local-ERM terminal fallback) over in-memory faulty links. Expected
//! shape: accuracy falls monotonically from the all-fresh ceiling toward
//! the local-only ERM floor and never sinks below it; the mode mix walks
//! fresh → stale → local as the fault rate rises; at rate 1.0 the fleet
//! *is* the floor (bit-identical local fits). The `min-margin` column is
//! the worst per-reading accuracy minus that device's own floor — the
//! ladder invariant says it is never negative.

use dre_bench::degraded::{
    degraded_scenario, readings_below_floor, run_degraded_rounds, spawn_degraded_fleet,
};
use dre_bench::{fmt_f, Table};
use dro_edge::ModeShares;

const DEVICES: usize = 6;
const ROUNDS: usize = 8;
const FLEET_SEED: u64 = 1;

fn main() {
    let sc = degraded_scenario(1_300, DEVICES);
    let floor = sc.mean_floor();

    let mut table = Table::new(
        "E13",
        "degraded-mode fleet: accuracy and mode mix vs. link fault rate",
        &[
            "fault-rate",
            "mean-acc",
            "min-margin",
            "fresh",
            "stale",
            "local",
            "fetch-fail",
            "short-circ",
        ],
    );

    let mut below_floor_total = 0;
    for rate in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut fleet = spawn_degraded_fleet(&sc, rate, FLEET_SEED);
        let readings = run_degraded_rounds(&sc, &mut fleet, ROUNDS);
        below_floor_total += readings_below_floor(&readings);

        let mean_acc =
            readings.iter().map(|r| r.accuracy).sum::<f64>() / readings.len() as f64;
        let min_margin = readings
            .iter()
            .map(|r| r.accuracy - r.floor_acc)
            .fold(f64::INFINITY, f64::min);
        let mut shares = ModeShares::default();
        for r in &readings {
            shares.push(r.mode);
        }
        let (mut fetch_failures, mut short_circuits) = (0u64, 0u64);
        for rt in &fleet {
            let c = rt.counters();
            fetch_failures += c.fetch_failures;
            short_circuits += c.short_circuits;
        }

        table.push_row(vec![
            format!("{rate:.1}"),
            fmt_f(mean_acc),
            fmt_f(min_margin),
            shares.fresh.to_string(),
            shares.stale.to_string(),
            shares.local.to_string(),
            fetch_failures.to_string(),
            short_circuits.to_string(),
        ]);
    }

    // The floor itself, for reference: what the fleet converges to when
    // the cloud is unreachable forever.
    table.push_row(vec![
        "local-only".into(),
        fmt_f(floor),
        fmt_f(0.0),
        "0".into(),
        "0".into(),
        (DEVICES * ROUNDS).to_string(),
        "-".into(),
        "-".into(),
    ]);
    table.emit();

    println!(
        "readings below the local-only floor across the sweep: {below_floor_total} \
         (the degradation ladder guarantees 0)"
    );
    assert_eq!(
        below_floor_total, 0,
        "degradation ladder violated: a fit scored below its device's floor"
    );
}
