//! E12 — ablations of the design choices DESIGN.md calls out.
//!
//! Four axes, each isolating one ingredient of the full learner:
//!
//! * **start selection** — data-aware multistart vs. the naive single start
//!   at the heaviest prior component (the basin-selection choice);
//! * **label-flip cost** — finite `κ` vs. features-only `κ = ∞`, evaluated
//!   on label-noisy training data (what the second transport coordinate
//!   buys);
//! * **prior fit** — collapsed Gibbs vs. truncated variational EM at the
//!   cloud (accuracy of the transferred summary);
//! * **prior weight** — `ρ` sweep (how hard the cloud should pull).

use dre_bench::{fmt_acc, standard_cloud, standard_family, standard_learner_config, Table};
use dre_data::shift;
use dre_models::metrics;
use dro_edge::evaluate::Aggregate;
use dro_edge::{CloudKnowledge, EdgeLearner, EdgeLearnerConfig, PriorFitMethod};

fn main() {
    let (family, mut rng) = standard_family(1201);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let base = standard_learner_config();
    let trials = 15;
    let n = 15;

    let mut table = Table::new(
        "E12",
        "ablations of the learner's design choices (n = 15, 15 trials)",
        &["axis", "variant", "accuracy"],
    );

    // --- (a) start selection ---
    for (name, multi_start) in [("multi-start", true), ("single-start", false)] {
        let config = EdgeLearnerConfig { multi_start, ..base };
        let mut agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(n, &mut rng);
            let test = task.generate(800, &mut rng);
            let fit = EdgeLearner::new(config, cloud.prior().clone())
                .expect("config")
                .fit(&train)
                .expect("fit");
            agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            "start-selection".into(),
            name.into(),
            fmt_acc(agg.mean(), agg.std_error()),
        ]);
    }

    // --- (b) label-flip cost under training label noise ---
    for (name, kappa) in [("kappa=1 (flips)", 1.0), ("kappa=inf (features)", f64::INFINITY)] {
        let config = EdgeLearnerConfig { kappa, ..base };
        let mut agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(30, &mut rng);
            let train = shift::label_flip_noise(&train, 0.2, &mut rng).expect("noise");
            let test = task.generate(800, &mut rng);
            let fit = EdgeLearner::new(config, cloud.prior().clone())
                .expect("config")
                .fit(&train)
                .expect("fit");
            agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            "label-flip-cost".into(),
            name.into(),
            fmt_acc(agg.mean(), agg.std_error()),
        ]);
    }

    // --- (c) cloud prior fit method ---
    let vb_cloud = CloudKnowledge::from_source_models(
        cloud.source_models().to_vec(),
        1.0,
        PriorFitMethod::Variational,
        &mut rng,
    )
    .expect("vb cloud");
    for (name, prior) in [("gibbs", cloud.prior()), ("variational", vb_cloud.prior())] {
        let mut agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(n, &mut rng);
            let test = task.generate(800, &mut rng);
            let fit = EdgeLearner::new(base, prior.clone())
                .expect("config")
                .fit(&train)
                .expect("fit");
            agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            "prior-fit".into(),
            name.into(),
            fmt_acc(agg.mean(), agg.std_error()),
        ]);
    }

    // --- (d) prior weight ρ ---
    for rho in [0.0, 0.25, 1.0, 4.0, 16.0] {
        let config = EdgeLearnerConfig { rho, ..base };
        let mut agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(n, &mut rng);
            let test = task.generate(800, &mut rng);
            let fit = EdgeLearner::new(config, cloud.prior().clone())
                .expect("config")
                .fit(&train)
                .expect("fit");
            agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            "prior-weight".into(),
            format!("rho={rho}"),
            fmt_acc(agg.mean(), agg.std_error()),
        ]);
    }

    table.emit();
}
