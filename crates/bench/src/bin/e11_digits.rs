//! E11 — the higher-dimensional "synthetic digits" workload (the documented
//! stand-in for the paper's real image data; see DESIGN.md).
//!
//! Part 1 (binary): the cloud serves four visually-confusable digit-pair
//! tasks; the DP prior over the 65-dimensional per-task parameters should
//! cluster by pair, and a fresh device on a known pair should learn from a
//! handful of samples. Part 2 (multiclass): the 10-class extension with the
//! pooled diagonal prior from `dro_edge::multiclass`.

use dre_bench::{fmt_acc, Table};
use dre_data::digits;
use dre_models::{metrics, SoftmaxObjective};
use dre_optim::{Lbfgs, Objective, StopCriteria};
use dre_prob::seeded_rng;
use dro_edge::evaluate::Aggregate;
use dro_edge::multiclass::{pooled_prior, MulticlassEdgeLearner};
use dro_edge::{
    baselines, CloudKnowledge, EdgeLearner, EdgeLearnerConfig, PriorFitMethod,
};

const PAIRS: [(usize, usize); 4] = [(3, 8), (5, 6), (1, 7), (0, 9)];

fn main() {
    binary_pairs();
    multiclass_few_shot();
}

fn binary_pairs() {
    let mut rng = seeded_rng(1101);
    // Cloud: 4 historical devices per pair, 100 samples/class each.
    let mut source_models = Vec::new();
    for _ in 0..4 {
        for &(a, b) in &PAIRS {
            let data = digits::binary_task(a, b, 100, 0.6, &mut rng).expect("task");
            source_models.push(
                dro_edge::train_source_model(&data).expect("source training"),
            );
        }
    }
    let cloud = CloudKnowledge::from_source_models(
        source_models,
        1.0,
        PriorFitMethod::CollapsedGibbs,
        &mut rng,
    )
    .expect("cloud fit");
    println!(
        "digits cloud: {} clusters from 16 source devices over 4 digit pairs; prior {} bytes",
        cloud.discovered_clusters(),
        cloud.transfer_size_bytes()
    );

    let config = EdgeLearnerConfig {
        epsilon: 0.05,
        kappa: 1.0,
        rho: 1.0,
        em_rounds: 6,
        em_tol: 1e-6,
        solver_iters: 150,
        multi_start: true,
    };
    let trials = 6;
    let n_per_class = 2;

    let mut table = Table::new(
        "E11a",
        "binary digit pairs, 2 samples/class, heavy noise (6 trials each)",
        &["pair", "local-erm", "dro+dp"],
    );
    for &(a, b) in &PAIRS {
        let mut erm_agg = Aggregate::default();
        let mut dp_agg = Aggregate::default();
        for _ in 0..trials {
            let train = digits::binary_task(a, b, n_per_class, 0.6, &mut rng).expect("train");
            let test = digits::binary_task(a, b, 100, 0.8, &mut rng).expect("test");
            let erm = baselines::fit_local_erm(&train, 1e-2).expect("erm");
            erm_agg.push(
                metrics::accuracy(&erm, test.features(), test.labels()).expect("metric"),
            );
            let fit = EdgeLearner::new(config, cloud.prior().clone())
                .expect("config")
                .fit(&train)
                .expect("fit");
            dp_agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            format!("{a}v{b}"),
            fmt_acc(erm_agg.mean(), erm_agg.std_error()),
            fmt_acc(dp_agg.mean(), dp_agg.std_error()),
        ]);
    }
    table.emit();
}

fn multiclass_few_shot() {
    let mut rng = seeded_rng(1102);
    let classes: Vec<usize> = (0..10).collect();
    // Cloud: 8 historical 10-class devices (different noise draws).
    let mut source_models = Vec::new();
    for _ in 0..8 {
        let (xs, ys) = digits::multiclass_task(&classes, 40, 0.6, &mut rng).expect("task");
        let obj = SoftmaxObjective::new(&xs, &ys, 10, 1e-3).expect("objective");
        let fit = Lbfgs::new(StopCriteria::with_max_iters(150))
            .minimize(&obj, &vec![0.0; obj.dim()])
            .expect("train");
        source_models.push(fit.x);
    }
    let prior = pooled_prior(&source_models, 0.01).expect("prior");

    let config = EdgeLearnerConfig {
        epsilon: 0.02,
        rho: 1.0,
        em_rounds: 4,
        solver_iters: 150,
        ..EdgeLearnerConfig::default()
    };
    let learner = MulticlassEdgeLearner::new(config, prior, 10).expect("learner");

    let mut table = Table::new(
        "E11b",
        "10-class digits, few-shot with test-time noise shift (5 trials)",
        &["samples/class", "softmax-erm", "robust+prior"],
    );
    for per_class in [1usize, 2, 5] {
        let mut erm_agg = Aggregate::default();
        let mut rp_agg = Aggregate::default();
        for _ in 0..5 {
            let (xs, ys) =
                digits::multiclass_task(&classes, per_class, 0.6, &mut rng).expect("train");
            let (txs, tys) =
                digits::multiclass_task(&classes, 30, 0.9, &mut rng).expect("test");

            let obj = SoftmaxObjective::new(&xs, &ys, 10, 1e-2).expect("objective");
            let erm = Lbfgs::new(StopCriteria::with_max_iters(150))
                .minimize(&obj, &vec![0.0; obj.dim()])
                .expect("erm");
            let erm_model = dre_models::SoftmaxModel::from_packed(10, digits::DIM, &erm.x);
            let acc = |m: &dre_models::SoftmaxModel| {
                txs.iter()
                    .zip(&tys)
                    .filter(|(x, &y)| m.predict(x) == y)
                    .count() as f64
                    / tys.len() as f64
            };
            erm_agg.push(acc(&erm_model));

            let fit = learner.fit(&xs, &ys).expect("fit");
            rp_agg.push(acc(&fit.model));
        }
        table.push_row(vec![
            per_class.to_string(),
            fmt_acc(erm_agg.mean(), erm_agg.std_error()),
            fmt_acc(rp_agg.mean(), rp_agg.std_error()),
        ]);
    }
    table.emit();
}
