//! E14 — closed-loop online prior refresh: round-over-round fleet accuracy
//! as the streaming `CloudLearner` folds edge `ModelReport`s into a SIR
//! particle filter and republishes the DP prior between rounds.
//!
//! The loop starts from an **uninformative** prior (one broad zero-centered
//! component), so round 0 is as good as regularized local fitting. Each
//! round a fresh cohort of data-rich reporter devices joins, fits through
//! the real `EdgeRuntime` over loopback TCP, and reports its packed model
//! exactly once; the learner drains the server inbox, updates the filter,
//! and publishes a refreshed prior. A few-shot **eval cohort** — drawn from
//! tasks where a learned cluster prior genuinely helps — is measured
//! *before* each round's refresh. Expected shape: the frozen-prior baseline
//! is bit-flat across rounds while the refreshed fleet climbs steeply after
//! the first refresh and ends near the batch-prior ceiling; every eval
//! client sees every refreshed generation over a single keep-alive
//! connection (`conns == 1` throughout).

use std::sync::Arc;
use std::time::Duration;

use dre_bayes::MixturePrior;
use dre_bench::{fmt_f, Table};
use dre_data::{Dataset, TaskFamily, TaskFamilyConfig};
use dre_learner::{CloudLearner, LearnerConfig, SirConfig};
use dre_linalg::Matrix;
use dre_models::metrics;
use dre_prob::seeded_rng;
use dre_serve::{
    BreakerConfig, EdgeRuntime, EdgeRuntimeConfig, PriorServer, RetryPolicy, ServeConfig,
    ServerState, TcpConnector,
};
use dro_edge::{CloudKnowledge, EdgeLearnerConfig, FitMode};

const TASK_ID: u64 = 9;
const REPORTERS_PER_ROUND: usize = 5;
const EVALS: usize = 3;
const ROUNDS: usize = 5;
const SCENARIO_SEED: u64 = 7_500;
const LEARNER_SEED: u64 = 42;

fn family_config() -> TaskFamilyConfig {
    TaskFamilyConfig {
        dim: 4,
        num_clusters: 2,
        cluster_separation: 4.0,
        within_cluster_std: 0.2,
        label_noise: 0.02,
        steepness: 3.0,
    }
}

fn learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        em_rounds: 3,
        solver_iters: 40,
        multi_start: false,
        ..EdgeLearnerConfig::default()
    }
}

fn runtime_config(report_models: bool, device_id: u64) -> EdgeRuntimeConfig {
    EdgeRuntimeConfig {
        task_id: TASK_ID,
        device_id,
        learner: learner_config(),
        erm_lambda: 1e-3,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_steps: 1,
            cooldown_jitter: 0,
            seed: 0,
        },
        stale_ttl: 2,
        report_models,
        keep_alive: true,
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 13,
    }
}

/// One broad zero-centered component over packed `[w…, b]` parameters.
fn broad_prior(p: usize) -> MixturePrior {
    MixturePrior::single(vec![0.0; p], Matrix::identity(p).scaled(25.0)).unwrap()
}

struct DeviceData {
    train: Dataset,
    test: Dataset,
}

/// The fixed scenario: a growing reporter pool (each device reports once,
/// in its joining round) plus a few-shot eval cohort rejection-sampled so
/// the reference batch cloud prior beats plain local ERM — the coverage
/// the closed loop has to recover online. Also returns the batch-prior
/// ceiling: mean eval accuracy under the full offline `CloudKnowledge`
/// prior the streaming learner is approximating.
fn scenario(seed: u64) -> (Vec<DeviceData>, Vec<DeviceData>, usize, f64) {
    let mut rng = seeded_rng(seed);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let cloud = CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng).unwrap();

    let mut reporters = Vec::with_capacity(REPORTERS_PER_ROUND * ROUNDS);
    for _ in 0..REPORTERS_PER_ROUND * ROUNDS {
        let task = family.sample_task(&mut rng);
        reporters.push(DeviceData {
            train: task.generate(30, &mut rng),
            test: task.generate(100, &mut rng),
        });
    }

    let mut evals = Vec::with_capacity(EVALS);
    let mut ceiling = 0.0;
    for _ in 0..60 {
        if evals.len() == EVALS {
            break;
        }
        let task = family.sample_task(&mut rng);
        let train = task.generate(12, &mut rng);
        let test = task.generate(300, &mut rng);
        let erm = dro_edge::baselines::fit_local_erm(&train, 1e-3).unwrap();
        let erm_acc = metrics::accuracy(&erm, test.features(), test.labels()).unwrap();
        let fit = dro_edge::EdgeLearner::new(learner_config(), cloud.prior().clone())
            .unwrap()
            .fit(&train)
            .unwrap();
        let dro_acc = metrics::accuracy(&fit.model, test.features(), test.labels()).unwrap();
        if dro_acc > erm_acc + 0.01 {
            ceiling += dro_acc;
            evals.push(DeviceData { train, test });
        }
    }
    assert_eq!(evals.len(), EVALS, "could not draw a prior-covered eval cohort");
    (reporters, evals, family_config().dim + 1, ceiling / EVALS as f64)
}

/// Per-round mean eval accuracy (measured before that round's refresh),
/// the server generation after each round, and the total reports absorbed.
fn run_loop(
    reporters: &[DeviceData],
    evals: &[DeviceData],
    param_dim: usize,
    refresh: bool,
) -> (Vec<f64>, Vec<u64>, usize) {
    let mut server = PriorServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let state: Arc<ServerState> = Arc::clone(server.state());
    state.register_prior(TASK_ID, &broad_prior(param_dim));

    let mut eval_rts: Vec<_> = (0..EVALS)
        .map(|dev| {
            EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(false, 10_000 + dev as u64),
            )
        })
        .collect();

    let mut learner = CloudLearner::new(LearnerConfig {
        sir: SirConfig {
            seed: LEARNER_SEED,
            ..SirConfig::default()
        },
        refresh_interval: usize::MAX,
        min_reports_for_base: 4,
        admission: None,
    });
    let mut sink = Arc::clone(&state);
    let mut accs = Vec::with_capacity(ROUNDS);
    let mut generations = Vec::with_capacity(ROUNDS);
    let mut absorbed = 0;

    for round in 0..ROUNDS {
        let mut acc = 0.0;
        for (dev, rt) in eval_rts.iter_mut().enumerate() {
            let data = &evals[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "eval {dev} degraded");
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
        }
        accs.push(acc / EVALS as f64);

        let joining = &reporters[round * REPORTERS_PER_ROUND..(round + 1) * REPORTERS_PER_ROUND];
        for (dev, data) in joining.iter().enumerate() {
            // Each joining reporter is a fresh device: give it a unique id so
            // its seq-1 report is not replay-dropped by the server.
            let device_id = (round * REPORTERS_PER_ROUND + dev) as u64;
            let mut rt = EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(true, device_id),
            );
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "reporter {dev} degraded");
            assert!(fit.reported, "reporter {dev} did not report");
        }
        if refresh {
            let tick = learner.absorb(state.take_reports(), &mut sink).unwrap();
            absorbed += tick.absorbed;
            learner.force_refresh(&mut sink).unwrap();
        }
        generations.push(state.cache_generation());
    }

    for (dev, rt) in eval_rts.iter().enumerate() {
        let m = rt.client().metrics();
        assert_eq!(m.connections, 1, "eval {dev} reconnected mid-loop");
    }
    server.shutdown();
    (accs, generations, absorbed)
}

fn main() {
    let (reporters, evals, param_dim, ceiling) = scenario(SCENARIO_SEED);
    let (frozen, _, frozen_absorbed) = run_loop(&reporters, &evals, param_dim, false);
    let (refreshed, generations, absorbed) = run_loop(&reporters, &evals, param_dim, true);

    let mut table = Table::new(
        "E14",
        "closed-loop online prior refresh: eval accuracy per round, frozen vs refreshed",
        &[
            "round",
            "frozen-acc",
            "refreshed-acc",
            "delta",
            "generation",
            "reports-seen",
        ],
    );
    for r in 0..ROUNDS {
        table.push_row(vec![
            r.to_string(),
            fmt_f(frozen[r]),
            fmt_f(refreshed[r]),
            fmt_f(refreshed[r] - frozen[r]),
            generations[r].to_string(),
            (r * REPORTERS_PER_ROUND).to_string(),
        ]);
    }
    // The ceiling the streaming learner approximates: the same eval cohort
    // under the full offline batch-fitted cloud prior.
    table.push_row(vec![
        "batch-prior".into(),
        "-".into(),
        fmt_f(ceiling),
        fmt_f(ceiling - frozen[0]),
        "-".into(),
        (REPORTERS_PER_ROUND * ROUNDS).to_string(),
    ]);
    table.emit();

    println!(
        "learner absorbed {absorbed} reports ({frozen_absorbed} when frozen); every eval \
         device held one keep-alive connection across all {ROUNDS} rounds"
    );
    assert_eq!(absorbed, REPORTERS_PER_ROUND * ROUNDS);
    assert_eq!(frozen_absorbed, 0);
    for (r, acc) in frozen.iter().enumerate() {
        assert_eq!(*acc, frozen[0], "frozen round {r} drifted without a prior change");
    }
    let (first, last) = (refreshed[0], *refreshed.last().unwrap());
    assert!(
        last > first + 0.01 && last > *frozen.last().unwrap() + 0.01,
        "closed loop never learned: refreshed {refreshed:?} vs frozen {frozen:?}"
    );
}
