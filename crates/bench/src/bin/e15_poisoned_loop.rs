//! E15 — poisoned closed loop: report admission vs a colluding Byzantine
//! cohort, swept over the adversarial fraction.
//!
//! The E14 closed loop (streaming `CloudLearner` refreshing the DP prior
//! from fleet `ModelReport`s) runs again with a colluding cohort riding
//! along: each round `A` adversary devices report one identical boosted
//! worst-case model (`ColludingBoost`, anti-correlated with the honest
//! decision functions) alongside `10 − A` honest reporters, so the
//! adversarial fraction of the report stream is exactly `A/10`. Every
//! `(fraction, admission)` cell replays the same scenario seed; the only
//! difference between the on/off arms is the learner's predictive-marginal
//! gate. Expected shape: with admission ON every poisoned report is gated
//! (`gated == A·rounds`), the colluders are quarantined, and accuracy
//! tracks the clean loop at every fraction; with admission OFF the poison
//! enters the filter and the fleet's worst round craters as the fraction
//! grows — the heaviest-component capture the gate exists to prevent.
//! `cargo run -p dre-bench --release --bin e15_poisoned_loop`, mirrored at
//! `results/e15.json`.

use std::sync::Arc;
use std::time::Duration;

use dre_bayes::MixturePrior;
use dre_bench::{fmt_f, Table};
use dre_data::{Dataset, TaskFamily, TaskFamilyConfig};
use dre_edgesim::{poisoned_report, AdversaryKind};
use dre_learner::{AdmissionConfig, CloudLearner, LearnerConfig, SirConfig};
use dre_linalg::Matrix;
use dre_models::metrics;
use dre_prob::seeded_rng;
use dre_serve::{
    BreakerConfig, EdgeRuntime, EdgeRuntimeConfig, PriorClient, PriorServer, RetryPolicy,
    ServeConfig, ServerState, TcpConnector,
};
use dro_edge::{EdgeLearnerConfig, FitMode};

const TASK_ID: u64 = 9;
/// Total reports per round (honest + adversarial), fixed so the swept
/// adversary counts {0, 1, 3, 5} land exactly on {0, 10, 30, 50}%.
const REPORTS_PER_ROUND: usize = 10;
const ADVERSARY_SWEEP: [usize; 4] = [0, 1, 3, 5];
const EVALS: usize = 3;
const ROUNDS: usize = 5;
const SCENARIO_SEED: u64 = 9_000;
const LEARNER_SEED: u64 = 42;
/// Worst-case transport budget each adversary applies to its own data.
const ADVERSARY_BUDGET: f64 = 2.0;
/// Collusion boost scale; negative so the cohort's single tight cluster is
/// anti-correlated with the honest decision functions (see the poisoned
/// closed-loop test for the full rationale).
const ADVERSARY_SCALE: f64 = -2.0;
/// Noise band around the clean run used for the rounds-to-clean column.
const NOISE_BAND: f64 = 0.02;

fn family_config() -> TaskFamilyConfig {
    TaskFamilyConfig {
        dim: 4,
        num_clusters: 2,
        cluster_separation: 4.0,
        within_cluster_std: 0.2,
        label_noise: 0.02,
        steepness: 3.0,
    }
}

fn learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        em_rounds: 3,
        solver_iters: 40,
        multi_start: false,
        ..EdgeLearnerConfig::default()
    }
}

fn runtime_config(report_models: bool, device_id: u64) -> EdgeRuntimeConfig {
    EdgeRuntimeConfig {
        task_id: TASK_ID,
        device_id,
        learner: learner_config(),
        erm_lambda: 1e-3,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_steps: 1,
            cooldown_jitter: 0,
            seed: 0,
        },
        stale_ttl: 2,
        report_models,
        keep_alive: true,
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 13,
    }
}

/// Default gate with warmup matched to `min_reports_for_base` and the
/// margin the poisoned closed-loop test calibrated between the honest
/// score spread and the colluders' first-contact marginals.
fn admission_on() -> AdmissionConfig {
    AdmissionConfig {
        warmup: 4,
        margin: 8.0,
        ..AdmissionConfig::default()
    }
}

/// One broad zero-centered component over packed `[w…, b]` parameters.
fn broad_prior(p: usize) -> MixturePrior {
    MixturePrior::single(vec![0.0; p], Matrix::identity(p).scaled(25.0)).unwrap()
}

struct DeviceData {
    train: Dataset,
    test: Dataset,
}

/// Honest reporter pool (enough for an all-honest round at every sweep
/// point) plus the few-shot eval cohort, rejection-sampled — like the
/// poisoned closed-loop test — from tasks where a *learned* cluster prior
/// genuinely helps the few-shot fit.
fn scenario(seed: u64) -> (Vec<DeviceData>, Vec<DeviceData>, usize) {
    let mut rng = seeded_rng(seed);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    // Reference batch prior, used only to select prior-covered eval tasks.
    let cloud = dro_edge::CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng).unwrap();

    let mut reporters = Vec::with_capacity(REPORTS_PER_ROUND * ROUNDS);
    for _ in 0..REPORTS_PER_ROUND * ROUNDS {
        let task = family.sample_task(&mut rng);
        reporters.push(DeviceData {
            train: task.generate(30, &mut rng),
            test: task.generate(100, &mut rng),
        });
    }

    let mut evals = Vec::with_capacity(EVALS);
    for _ in 0..60 {
        if evals.len() == EVALS {
            break;
        }
        let task = family.sample_task(&mut rng);
        let train = task.generate(12, &mut rng);
        let test = task.generate(300, &mut rng);
        let erm = dro_edge::baselines::fit_local_erm(&train, 1e-3).unwrap();
        let erm_acc = metrics::accuracy(&erm, test.features(), test.labels()).unwrap();
        let fit = dro_edge::EdgeLearner::new(learner_config(), cloud.prior().clone())
            .unwrap()
            .fit(&train)
            .unwrap();
        let dro_acc = metrics::accuracy(&fit.model, test.features(), test.labels()).unwrap();
        if dro_acc > erm_acc + 0.01 {
            evals.push(DeviceData { train, test });
        }
    }
    assert_eq!(evals.len(), EVALS, "could not draw a prior-covered eval cohort");
    (reporters, evals, family_config().dim + 1)
}

struct Outcome {
    round_accuracy: Vec<f64>,
    absorbed: usize,
    gated: usize,
    quarantined: usize,
}

/// One closed-loop run at `adversaries` colluders per round. Eval accuracy
/// is measured before each round's refresh; honest reporters join as fresh
/// devices while the adversary cohort keeps persistent identities and
/// monotone sequence numbers (well-formed traffic — gating is semantic).
fn run(
    reporters: &[DeviceData],
    evals: &[DeviceData],
    param_dim: usize,
    adversaries: usize,
    admission: Option<AdmissionConfig>,
) -> Outcome {
    let honest = REPORTS_PER_ROUND - adversaries;
    let mut server = PriorServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let state: Arc<ServerState> = Arc::clone(server.state());
    state.register_prior(TASK_ID, &broad_prior(param_dim));

    let mut eval_rts: Vec<_> = (0..EVALS)
        .map(|dev| {
            EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(false, 10_000 + dev as u64),
            )
        })
        .collect();
    let mut adversary_clients: Vec<_> = (0..adversaries)
        .map(|_| PriorClient::new(TcpConnector::new(addr), fast_policy()))
        .collect();

    let mut learner = CloudLearner::try_new(LearnerConfig {
        sir: SirConfig {
            seed: LEARNER_SEED,
            ..SirConfig::default()
        },
        refresh_interval: usize::MAX,
        min_reports_for_base: 4,
        admission,
    })
    .unwrap();
    let mut sink = Arc::clone(&state);
    let mut out = Outcome {
        round_accuracy: Vec::with_capacity(ROUNDS),
        absorbed: 0,
        gated: 0,
        quarantined: 0,
    };

    for round in 0..ROUNDS {
        let mut acc = 0.0;
        for (dev, rt) in eval_rts.iter_mut().enumerate() {
            let data = &evals[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "eval {dev} degraded");
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
        }
        out.round_accuracy.push(acc / EVALS as f64);

        let joining = &reporters[round * honest..(round + 1) * honest];
        for (k, data) in joining.iter().enumerate() {
            // Each joining reporter is a fresh device: a unique id keeps
            // its seq-1 report clear of the server's replay guard.
            let dev = round * honest + k;
            let mut rt = EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(true, dev as u64),
            );
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "reporter {dev} degraded");
            assert!(fit.reported, "reporter {dev} did not report");
        }
        for (k, client) in adversary_clients.iter_mut().enumerate() {
            // True collusion: the cohort reports one identical model
            // derived from the same honest-looking dataset every round.
            let params = poisoned_report(
                AdversaryKind::ColludingBoost {
                    budget: ADVERSARY_BUDGET,
                    scale: ADVERSARY_SCALE,
                },
                &reporters[0].train,
                1e-3,
            )
            .unwrap();
            let accepted = client
                .report_model(TASK_ID, 50_000 + k as u64, round as u64 + 1, params)
                .unwrap();
            assert!(accepted, "well-formed adversary frame refused at the wire");
        }

        let tick = learner.absorb(state.take_reports(), &mut sink).unwrap();
        state.note_admission_outcomes(tick.gated as u64, tick.quarantined as u64);
        out.absorbed += tick.absorbed;
        out.gated += tick.gated;
        out.quarantined += tick.quarantined;
        learner.force_refresh(&mut sink).unwrap();
    }

    server.shutdown();
    out
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SCENARIO_SEED);
    let (reporters, evals, param_dim) = scenario(seed);

    // Clean reference: all-honest loop, no gate. Its final accuracy (minus
    // the documented noise band) is the bar for the rounds-to-clean column.
    let clean = run(&reporters, &evals, param_dim, 0, None);
    let clean_final = *clean.round_accuracy.last().unwrap();
    let target = clean_final - NOISE_BAND;

    let mut table = Table::new(
        "E15",
        "poisoned closed loop: admission gate vs colluding reporters, by adversary fraction",
        &[
            "adv-frac",
            "admission",
            "final-acc",
            "worst-acc",
            "rounds-to-clean",
            "absorbed",
            "gated",
            "quarantined",
        ],
    );

    for adv in ADVERSARY_SWEEP {
        let honest = REPORTS_PER_ROUND - adv;
        for (label, admission) in [("on", Some(admission_on())), ("off", None)] {
            let out = if adv == 0 && label == "off" {
                // Reuse the reference run rather than replaying it.
                Outcome {
                    round_accuracy: clean.round_accuracy.clone(),
                    absorbed: clean.absorbed,
                    gated: clean.gated,
                    quarantined: clean.quarantined,
                }
            } else {
                run(&reporters, &evals, param_dim, adv, admission)
            };

            // Deterministic accounting: the gate drops exactly the poisoned
            // stream and nothing else; with the gate off everything lands.
            if label == "on" {
                assert_eq!(out.absorbed, honest * ROUNDS, "adv {adv}: honest report gated");
                assert_eq!(out.gated, adv * ROUNDS, "adv {adv}: poisoned report admitted");
            } else {
                assert_eq!(out.gated, 0);
                assert_eq!(out.absorbed, REPORTS_PER_ROUND * ROUNDS);
            }

            let final_acc = *out.round_accuracy.last().unwrap();
            let worst = out
                .round_accuracy
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            let rounds_to_clean = out
                .round_accuracy
                .iter()
                .position(|&a| a >= target)
                .map_or_else(|| "-".into(), |r| r.to_string());
            table.push_row(vec![
                format!("{}%", adv * 100 / REPORTS_PER_ROUND),
                label.into(),
                fmt_f(final_acc),
                fmt_f(worst),
                rounds_to_clean,
                out.absorbed.to_string(),
                out.gated.to_string(),
                out.quarantined.to_string(),
            ]);
        }
    }
    table.emit();
    println!(
        "clean reference: final accuracy {} (rounds-to-clean bar {})",
        fmt_f(clean_final),
        fmt_f(target)
    );
}
