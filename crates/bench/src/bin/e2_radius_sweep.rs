//! E2 — sensitivity to the Wasserstein radius `ε`.
//!
//! At small `n`, sweeps `ε` for the DRO+DP learner and evaluates on clean
//! and covariate-shifted test sets. Expected shape: on clean data small `ε`
//! is best and large `ε` over-regularizes; under shift, a moderate `ε`
//! dominates `ε = 0` — robustness pays exactly when the test distribution
//! moves.

use dre_bench::{fmt_acc, standard_cloud, standard_family, standard_learner_config, Table};
use dre_models::metrics;
use dro_edge::evaluate::Aggregate;
use dro_edge::{EdgeLearner, EdgeLearnerConfig};

fn main() {
    let (family, mut rng) = standard_family(202);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let base = standard_learner_config();
    let trials = 20;
    let n = 20;
    let shift_magnitude = 1.0;

    let mut table = Table::new(
        "E2",
        "DRO+DP accuracy vs. Wasserstein radius ε (n = 20, 20 trials)",
        &["epsilon", "clean", "shifted"],
    );

    for eps in [0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let config = EdgeLearnerConfig {
            epsilon: eps,
            ..base
        };
        let mut clean_agg = Aggregate::default();
        let mut shift_agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(n, &mut rng);
            let clean_test = task.generate(800, &mut rng);
            // Shift along the task's own weight direction — the axis the
            // classifier is sensitive to.
            let dir = task.model().weights().to_vec();
            let shifted_test =
                dre_data::shift::directional_shift(&clean_test, &dir, shift_magnitude)
                    .expect("shift is valid");

            let learner =
                EdgeLearner::new(config, cloud.prior().clone()).expect("config valid");
            let fit = learner.fit(&train).expect("fit failed");
            clean_agg.push(
                metrics::accuracy(&fit.model, clean_test.features(), clean_test.labels())
                    .expect("metric"),
            );
            shift_agg.push(
                metrics::accuracy(&fit.model, shifted_test.features(), shifted_test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            format!("{eps:.2}"),
            fmt_acc(clean_agg.mean(), clean_agg.std_error()),
            fmt_acc(shift_agg.mean(), shift_agg.std_error()),
        ]);
    }
    table.emit();
}
