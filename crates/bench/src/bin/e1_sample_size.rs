//! E1 — the headline result: test accuracy vs. local sample size.
//!
//! Reproduces the paper's central claim: with few local samples, the
//! DRO + DP-prior learner dominates standard approaches that use local edge
//! data only; as `n` grows all local methods converge toward the oracle.

use dre_bench::{
    concentration_radius, fmt_acc, standard_cloud, standard_family, standard_learner_config,
    Table,
};
use dro_edge::evaluate::{run_trials, Method};
use dro_edge::EdgeLearnerConfig;

fn main() {
    let (family, mut rng) = standard_family(101);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let methods = Method::ALL;
    let trials = 20;

    let mut table = Table::new(
        "E1",
        "test accuracy vs. local sample size (20 trials each)",
        &[
            "n", "local-erm", "dro-only", "map-only", "cloud-only", "dro+dp", "oracle",
        ],
    );

    for n in [10usize, 20, 50, 100, 200, 500] {
        // Concentration-scaled radius: the ball shrinks as local evidence
        // accumulates, so the robust methods converge to the oracle.
        let config = EdgeLearnerConfig {
            epsilon: concentration_radius(0.5, n),
            ..standard_learner_config()
        };
        let aggs = run_trials(
            &methods,
            trials,
            cloud.prior(),
            &config,
            &mut rng,
            |rng| {
                let task = family.sample_task(rng);
                let train = task.generate(n, rng);
                let test = task.generate(1000, rng);
                Ok((train, test, task))
            },
        )
        .expect("E1 trials failed");
        let mut row = vec![n.to_string()];
        for m in methods {
            let agg = &aggs.iter().find(|(mm, _)| *mm == m).expect("method ran").1;
            row.push(fmt_acc(agg.mean(), agg.std_error()));
        }
        table.push_row(row);
    }
    table.emit();
}
