//! E16 — prior re-registration incast: the whole fleet re-fetches the DP
//! prior at `t = 0` through one big switch, and the only thing standing
//! between the devices and congestion collapse is the switch's port queue
//! capacity.
//!
//! This is the first experiment the event-driven core makes honest: the
//! legacy simulator gave every device a private lossless pipe, so a
//! million simultaneous prior fetches cost nothing but serialization
//! time. Here every request incasts into the cloud's ingress queue and
//! every payload leaves through the cloud's uplink queue; frames beyond
//! the drop-tail capacity are lost and must be retransmitted by the
//! go-back-N transport, and devices whose retry budget runs out fall back
//! to local-only ERM — the degradation ladder's bottom rung, visible in
//! the report as `FitMode::LocalOnly`.
//!
//! Sweep: fleet size {1k, 10k, 100k} × queue capacity {64, 1024,
//! fleet-sized}, each under a 0.5 % Bernoulli device-link loss at two
//! seeds. Reported: exact fabric drop rate (`dropped / (dropped +
//! forwarded)`), retransmitted kilobytes, local-fallback count, and
//! p50/p99 device completion. Every configuration is run twice and the
//! two reports must match bit-for-bit (every per-device f64 included) —
//! the determinism the executor guarantees.
//!
//! Expected shape: at fleet-sized queues the fabric absorbs the incast
//! (drop rate ≈ the injected link loss, no fallbacks); at 64 frames the
//! big fleets collapse — drop rates past 50 %, retransmitted volume
//! rivaling the useful volume, and a long p99 tail of devices that only
//! finish on their backed-off retries or give up entirely.

use dre_bench::Table;
use dre_edgesim::{
    prior_transfer_bytes, ComputeModel, DeviceSpec, FitMode, Link, LossModel, RetryModel, Scenario,
    SimDuration, Strategy, SwitchConfig, Topology,
};

/// The re-registration scenario: `n` devices, all fetching the prior at
/// `t = 0` through a shared switch with the given queue capacity.
fn incast(n: usize, queue_capacity: u32, seed: u64) -> Scenario {
    // A 1 Gbps cloud access link: the queues, not the wire, decide.
    let topo = Topology::one_big_switch(Link::new_ms(1.0, 1.25e8))
        .with_switch(SwitchConfig {
            queue_capacity,
            // The RTO must sit above the fleet-sized queue's worst-case
            // drain (~0.75 s at 100k devices) or every run — even the
            // roomy-queue baseline — degenerates into spurious
            // retransmission; 30 s keeps timeouts meaning "dropped".
            rto: SimDuration::from_secs_f64(30.0),
            ..SwitchConfig::default()
        })
        .with_device_loss(LossModel::Bernoulli { loss: 0.005, seed });
    let mut sc = Scenario::new(ComputeModel::default())
        .with_topology(topo)
        // The application deadline brackets the transport's backed-off
        // timers; three silent attempts and the device trains locally.
        .with_retry(RetryModel {
            timeout: SimDuration::from_secs_f64(120.0),
            max_attempts: 3,
        });
    for _ in 0..n {
        sc.add_device(DeviceSpec {
            // 10 Mbps access, 5 ms one way: LTE-class edge devices.
            link: Link::new_ms(5.0, 1.25e6),
            strategy: Strategy::PriorTransfer {
                samples: 200,
                dim: 8,
                iterations: 60,
                em_rounds: 4,
                prior_components: 2,
            },
        });
    }
    sc
}

/// `q`-th percentile (0..=1) of device completion times, in seconds.
fn completion_percentile(sorted_us: &[u64], q: f64) -> f64 {
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1e6
}

fn main() {
    println!(
        "prior payload on the wire: {} B (measured dre-serve frame, 2 components, dim 8)",
        prior_transfer_bytes(2, 8)
    );
    let mut table = Table::new(
        "E16",
        "re-registration incast: fabric drop rate and completion tail vs. switch queue capacity",
        &[
            "fleet", "queue", "seed", "drop-%", "retx-KB", "fallbacks", "p50-s", "p99-s",
            "makespan-s",
        ],
    );
    for fleet in [1_000usize, 10_000, 100_000] {
        // 64 frames is a collapse-inducing toy, 1024 a plausible shallow
        // switch buffer, `2n + 16` the "buffer the whole incast" upper
        // bound the scale tests use.
        for queue_capacity in [64, 1_024, 2 * fleet as u32 + 16] {
            for seed in [17u64, 99] {
                let sc = incast(fleet, queue_capacity, seed);
                let report = sc.run();
                // The executor's determinism claim, checked wholesale: a
                // rerun of the identical scenario must reproduce every
                // counter and every per-device f64 bit-for-bit.
                assert_eq!(sc.run(), report, "rerun diverged at seed {seed}");
                let offered = report.messages_dropped + report.frames_forwarded;
                let drop_rate = report.messages_dropped as f64 / offered as f64;
                let fallbacks = report
                    .devices
                    .iter()
                    .filter(|d| d.mode == FitMode::LocalOnly)
                    .count();
                let mut completions: Vec<u64> =
                    report.devices.iter().map(|d| d.completion.as_micros()).collect();
                completions.sort_unstable();
                table.push_row(vec![
                    fleet.to_string(),
                    queue_capacity.to_string(),
                    seed.to_string(),
                    format!("{:.2}", drop_rate * 100.0),
                    format!("{:.1}", report.bytes_retransmitted as f64 / 1024.0),
                    fallbacks.to_string(),
                    format!("{:.2}", completion_percentile(&completions, 0.50)),
                    format!("{:.2}", completion_percentile(&completions, 0.99)),
                    format!("{:.2}", report.makespan.as_secs_f64()),
                ]);
            }
        }
    }
    table.emit();
}
