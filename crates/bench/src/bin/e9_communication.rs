//! E9 — communication and latency: prior transfer vs. raw-data upload vs.
//! local-only, in the event-driven simulator, using the *actual* serialized
//! size of the fitted DP prior.
//!
//! Two cloud profiles bracket reality: a dedicated hyperscale cloud (fast,
//! never the bottleneck) and a shared regional edge server (modest compute
//! that queues under fleet load). Expected shape: prior transfer moves one
//! to two orders of magnitude fewer bytes than raw upload in every case,
//! its makespan is flat in fleet size, and it wins outright once the cloud
//! is contended. A second table turns on the connection model and compares
//! the serving layer's two client modes: fresh-per-request pays a
//! handshake round trip per message, keep-alive pays once per device
//! round — bytes identical, latency not. A third table replays the
//! prior-transfer round through the one-big-switch fabric: transport acks
//! and retransmissions surface in the byte totals, and the makespan grows
//! with fleet size as the cloud's shared ports queue — congestion the
//! private-pipe model cannot represent.

use dre_bench::{standard_cloud, standard_family, Table};
use dre_edgesim::{
    model_report_bytes, prior_transfer_bytes, ClientMode, ComputeModel, DeviceSpec, Link,
    RetryModel, Scenario, SimDuration, Strategy, SwitchConfig, Topology, ACK_BYTES,
};

fn main() {
    let (family, mut rng) = standard_family(909);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let prior_components = cloud.prior().num_components();

    // A digits-scale workload: 64 features, 500 local samples — raw upload
    // is ~256 KB, the framed prior a few KB per the measured size below.
    let dim = 64;
    let samples = 500;
    println!(
        "fitted prior: {} components → {} bytes on the wire at dim {} \
         (measured dre-serve frame size, not an assumed constant)",
        prior_components,
        prior_transfer_bytes(prior_components, dim),
        dim
    );
    let link = Link::new_ms(25.0, 250_000.0); // 25 ms one way, 250 KB/s

    // Device ≈ Raspberry-Pi class; the two cloud profiles.
    let profiles = [
        ("hyperscale", 1e12),
        ("shared-edge-server", 4e9),
    ];

    let mut table = Table::new(
        "E9",
        "network bytes and completion time per strategy, fleet size and cloud profile",
        &[
            "cloud", "strategy", "fleet", "total-KB", "makespan-ms", "cloud-busy-ms",
            "device-mJ",
        ],
    );

    for (profile, cloud_flops) in profiles {
        for fleet in [1usize, 10, 50] {
            for (name, strategy) in [
                (
                    "edge-only",
                    Strategy::EdgeOnly {
                        samples,
                        dim,
                        iterations: 200,
                    },
                ),
                (
                    "cloud-round-trip",
                    Strategy::CloudRoundTrip {
                        samples,
                        dim,
                        iterations: 200,
                    },
                ),
                (
                    "prior-transfer",
                    Strategy::PriorTransfer {
                        samples,
                        dim,
                        iterations: 100,
                        em_rounds: 5,
                        prior_components,
                    },
                ),
            ] {
                let mut scenario = Scenario::new(ComputeModel {
                    device_flops: 2e9,
                    cloud_flops,
                    ..ComputeModel::default()
                });
                for _ in 0..fleet {
                    scenario.add_device(DeviceSpec { link, strategy });
                }
                let report = scenario.run();
                let device_mj = report.devices[0].total_joules() * 1e3;
                table.push_row(vec![
                    profile.to_string(),
                    name.to_string(),
                    fleet.to_string(),
                    format!("{:.1}", report.total_bytes as f64 / 1024.0),
                    format!("{:.1}", report.makespan.as_secs_f64() * 1e3),
                    format!("{:.1}", report.cloud_busy.as_secs_f64() * 1e3),
                    format!("{:.2}", device_mj),
                ]);
            }
        }
    }
    table.emit();

    // ── Connection model: fresh-per-request vs keep-alive ──────────────
    // The serving layer's keep-alive client holds one stream per device
    // round; the simulator mirrors it. Every fresh connection costs a
    // handshake round trip (time only — frame bytes are identical in
    // both modes), so under lossy conditions that force retries the
    // per-message redials of a fresh-per-request client stack up while
    // keep-alive pays once. Bytes include the ModelReport telemetry leg
    // the connection model adds.
    println!(
        "\nconnection model: prior transfer through a 150 ms cloud outage \
         (60 ms retry deadline), report frame = {} B",
        model_report_bytes(dim)
    );
    let mut conn_table = Table::new(
        "E9-conn",
        "handshake cost per client mode on the prior-transfer round",
        &["client-mode", "handshakes", "attempts", "total-KB", "makespan-ms"],
    );
    for (name, mode) in [
        ("fresh-per-request", ClientMode::FreshPerRequest),
        ("keep-alive", ClientMode::KeepAlive),
    ] {
        let mut scenario = Scenario::new(ComputeModel {
            device_flops: 2e9,
            ..ComputeModel::default()
        })
        .with_retry(RetryModel {
            timeout: SimDuration::from_millis_f64(60.0),
            max_attempts: 5,
        })
        .with_outage(SimDuration::ZERO, SimDuration::from_millis_f64(150.0))
        .with_client_mode(mode);
        for _ in 0..10 {
            scenario.add_device(DeviceSpec {
                link,
                strategy: Strategy::PriorTransfer {
                    samples,
                    dim,
                    iterations: 100,
                    em_rounds: 5,
                    prior_components,
                },
            });
        }
        let report = scenario.run();
        let d = &report.devices[0];
        conn_table.push_row(vec![
            name.to_string(),
            d.handshakes.to_string(),
            d.attempts.to_string(),
            format!("{:.1}", report.total_bytes as f64 / 1024.0),
            format!("{:.1}", report.makespan.as_secs_f64() * 1e3),
        ]);
    }
    conn_table.emit();

    // ── Switch fabric: what the private-pipe model hides ───────────────
    // The same prior-transfer round, now through the one-big-switch
    // topology: every frame is segmented at the MTU, pays serialization
    // and queueing delay at shared ports, and is acked by the go-back-N
    // transport. Byte totals grow by the transport overhead (one ack per
    // data frame) and the makespan grows with fleet size as the cloud's
    // ports queue — the congestion the legacy model could not represent.
    println!(
        "\nswitch fabric: same prior-transfer fleet through one big switch \
         (transport ack = {ACK_BYTES} B per data frame)"
    );
    let mut fabric_table = Table::new(
        "E9-fabric",
        "legacy private pipes vs. one-big-switch fabric on the prior-transfer round",
        &["model", "fleet", "total-KB", "makespan-ms", "dropped", "retx-KB"],
    );
    let strategy = Strategy::PriorTransfer {
        samples,
        dim,
        iterations: 100,
        em_rounds: 5,
        prior_components,
    };
    for fleet in [1usize, 10, 50] {
        for fabric in [false, true] {
            let mut scenario = Scenario::new(ComputeModel {
                device_flops: 2e9,
                ..ComputeModel::default()
            });
            if fabric {
                // A 1 MB/s cloud access link shared by the whole fleet —
                // the incast bottleneck the private-pipe model assumes
                // away. Queues scale with the fleet but stay shallower
                // than the full payload fan-out, so the big fleets shed
                // frames at the cloud egress and go-back-N pays them
                // back in the retx column.
                scenario = scenario.with_topology(
                    Topology::one_big_switch(Link::new_ms(25.0, 1e6)).with_switch(SwitchConfig {
                        queue_capacity: 4 * fleet as u32 + 16,
                        ..SwitchConfig::default()
                    }),
                );
            }
            for _ in 0..fleet {
                scenario.add_device(DeviceSpec { link, strategy });
            }
            let report = scenario.run();
            fabric_table.push_row(vec![
                if fabric { "one-big-switch" } else { "private-pipes" }.to_string(),
                fleet.to_string(),
                format!("{:.1}", report.total_bytes as f64 / 1024.0),
                format!("{:.1}", report.makespan.as_secs_f64() * 1e3),
                report.messages_dropped.to_string(),
                format!("{:.1}", report.bytes_retransmitted as f64 / 1024.0),
            ]);
        }
    }
    fabric_table.emit();
}
