//! E6 — robustness under test-time covariate shift.
//!
//! Trains each method once per trial on clean data, then evaluates on test
//! sets shifted by increasing magnitudes along the task's sensitive
//! direction. Expected shape: all methods degrade with shift, but the
//! DRO-based methods degrade *slower* — the crossover where robustness
//! starts paying is the figure's point.

use dre_bench::{fmt_acc, standard_cloud, standard_family, standard_learner_config, Table};
use dre_data::shift;
use dre_models::metrics;
use dro_edge::evaluate::{Aggregate, Method};
use dro_edge::{baselines, EdgeLearner};

fn main() {
    let (family, mut rng) = standard_family(606);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let config = standard_learner_config();
    let trials = 15;
    let n = 30;
    let magnitudes = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0];
    let methods = [Method::LocalErm, Method::DroOnly, Method::MapOnly, Method::DroDp];

    let mut table = Table::new(
        "E6",
        "accuracy vs. covariate-shift magnitude (n = 30, 15 trials)",
        &["shift", "local-erm", "dro-only", "map-only", "dro+dp"],
    );

    // Train once per trial, evaluate across all magnitudes.
    let mut per_magnitude: Vec<Vec<(Method, Aggregate)>> = magnitudes
        .iter()
        .map(|_| methods.iter().map(|&m| (m, Aggregate::default())).collect())
        .collect();

    for _ in 0..trials {
        let task = family.sample_task(&mut rng);
        let train = task.generate(n, &mut rng);
        let clean_test = task.generate(800, &mut rng);
        let dir = task.model().weights().to_vec();

        let erm = baselines::fit_local_erm(&train, 1e-3).expect("erm");
        let dro = baselines::fit_dro_only(&train, config.epsilon, config.kappa).expect("dro");
        let map = baselines::fit_map_only(&train, cloud.prior(), config.rho, config.em_rounds)
            .expect("map");
        let drodp = EdgeLearner::new(config, cloud.prior().clone())
            .expect("config")
            .fit(&train)
            .expect("fit")
            .model;

        for (mi, &mag) in magnitudes.iter().enumerate() {
            let test = shift::directional_shift(&clean_test, &dir, mag).expect("shift");
            for (model, method) in [
                (&erm, Method::LocalErm),
                (&dro, Method::DroOnly),
                (&map, Method::MapOnly),
                (&drodp, Method::DroDp),
            ] {
                let acc = metrics::accuracy(model, test.features(), test.labels())
                    .expect("metric");
                per_magnitude[mi]
                    .iter_mut()
                    .find(|(m, _)| *m == method)
                    .expect("tracked")
                    .1
                    .push(acc);
            }
        }
    }

    for (mi, &mag) in magnitudes.iter().enumerate() {
        let mut row = vec![format!("{mag:.2}")];
        for (_, agg) in &per_magnitude[mi] {
            row.push(fmt_acc(agg.mean(), agg.std_error()));
        }
        table.push_row(row);
    }
    table.emit();
}
