//! Serial-vs-parallel and cached-vs-recompute wall-time comparison for the
//! workspace's hot kernels.
//!
//! Writes `BENCH_parallel.json` at the repository root: per kernel the two
//! wall times, the speedup, and an output diff checked against a per-kernel
//! tolerance (0 for the execution-layer kernels, which are bit-identical by
//! construction; the documented cache tolerance for the incremental-Gibbs
//! kernel). The process exits nonzero when any kernel exceeds its
//! tolerance, so CI can run it as a correctness smoke test.
//!
//! Flags:
//!
//! * `--smoke` — shrink every problem size so the run completes in seconds
//!   and skip rewriting `BENCH_parallel.json`; used by CI.
//!
//! On single-core machines the thread speedups hover around 1× (a warning
//! is printed), so the report also times the seed's row-at-a-time matmul
//! against the current row-blocked kernel and the exact-recompute Gibbs
//! against the predictive-cached one — both wins are algorithmic and
//! visible without threads.

use std::time::Instant;

use dre_bayes::{DpNiwGibbs, GibbsConfig, MixturePrior, VariationalConfig, VariationalDpGmm};
use dre_bench::degraded::{
    degraded_scenario, readings_below_floor, run_degraded_rounds, spawn_degraded_fleet,
};
use dre_bench::json::JsonValue;
use dre_edgesim::{
    ComputeModel, DeviceSpec, Link, Scenario, SimDuration, Strategy, SwitchConfig, Topology,
};
use dre_learner::{AdmissionConfig, AdmissionState, SirConfig, SirDpFilter};
use dre_linalg::{Cholesky, Matrix};
use dre_serve::{
    PriorClient, PriorServer, RetryPolicy, ServeConfig, ShardPlaneConfig, ShardedPriorPlane,
    TcpConnector,
};
use dre_models::{LinearModel, LogisticLoss};
use dre_optim::Objective as _;
use dre_prob::{seeded_rng, MvNormal, NormalInverseWishart};
use dre_robust::{WassersteinBall, WassersteinDualObjective};
use rand::Rng;

/// Best-of-`reps` wall time in milliseconds, plus the last result.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn random_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

/// The seed's streaming-axpy matmul (zero-skip, no tiling, no transpose) —
/// kept here as the timing baseline for the tiled kernel.
fn seed_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = vec![0.0; a.rows() * b.cols()];
    for i in 0..a.rows() {
        let orow = &mut out[i * b.cols()..(i + 1) * b.cols()];
        for (k, &aik) in a.row(i).iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            for (o, &bkj) in orow.iter_mut().zip(b.row(k)) {
                *o += aik * bkj;
            }
        }
    }
    Matrix::from_vec(a.rows(), b.cols(), out).expect("shape matches data")
}

/// One benchmarked kernel: the JSON report row plus the tolerance check CI
/// enforces.
struct KernelReport {
    json: JsonValue,
    name: String,
    diff: f64,
    tolerance: f64,
    /// Whether this kernel's headline number is a thread-scaling claim.
    /// Outside `--smoke`, running any such kernel with a single worker
    /// thread fails the run: a `"threads": 1` report would record
    /// meaningless ~1× speedups as if they were measurements.
    expects_parallelism: bool,
}

fn kernel_entry(name: &str, serial_ms: f64, parallel_ms: f64, diff: f64, tol: f64) -> KernelReport {
    KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name)),
            ("serial_ms", JsonValue::from(serial_ms)),
            ("parallel_ms", JsonValue::from(parallel_ms)),
            ("speedup", JsonValue::from(serial_ms / parallel_ms)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(tol)),
        ]),
        name: name.to_string(),
        diff,
        tolerance: tol,
        expects_parallelism: true,
    }
}

fn clustered_params(m: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded_rng(seed);
    let centers = [
        MvNormal::isotropic(vec![4.0; d], 0.05).expect("valid"),
        MvNormal::isotropic(vec![-4.0; d], 0.05).expect("valid"),
        MvNormal::isotropic(vec![0.0; d], 0.05).expect("valid"),
    ];
    (0..m)
        .map(|i| centers[i % centers.len()].sample(&mut rng))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if dre_parallel::max_threads() <= 1 {
        eprintln!(
            "warning: only 1 worker thread available; serial-vs-parallel speedups \
             will hover around 1x on this host (the seed-vs-tuned and \
             recompute-vs-cached rows measure algorithmic wins and remain valid)"
        );
    }
    let mut kernels: Vec<KernelReport> = Vec::new();

    // -- matmul (tiled kernel, row-parallel) --------------------------------
    let n = if smoke { 96 } else { 768 };
    let mut rng = seeded_rng(11);
    let a = random_matrix(&mut rng, n, n);
    let b = random_matrix(&mut rng, n, n);
    let (par_ms, par_out) = time_best(5, || a.matmul(&b).expect("dims agree"));
    let (ser_ms, ser_out) = time_best(5, || {
        dre_parallel::with_serial(|| a.matmul(&b).expect("dims agree"))
    });
    let diff = max_abs_diff(par_out.as_slice(), ser_out.as_slice());
    kernels.push(kernel_entry(&format!("matmul_{n}x{n}"), ser_ms, par_ms, diff, 0.0));
    println!("matmul_{n}x{n}: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    let (seed_ms, seed_out) = time_best(5, || seed_matmul(&a, &b));
    let baseline = JsonValue::object([
        (
            "name",
            JsonValue::from(format!("matmul_{n}x{n}_seed_kernel_vs_blocked").as_str()),
        ),
        ("baseline_ms", JsonValue::from(seed_ms)),
        ("tuned_ms", JsonValue::from(ser_ms)),
        ("speedup", JsonValue::from(seed_ms / ser_ms)),
        (
            "max_abs_diff",
            JsonValue::from(max_abs_diff(seed_out.as_slice(), ser_out.as_slice())),
        ),
    ]);
    println!("  seed kernel {seed_ms:.2} ms -> blocked {ser_ms:.2} ms ({:.2}x)", seed_ms / ser_ms);

    // -- Gibbs sweep scoring (serial vs parallel, cached path) ---------------
    let d = 6;
    let m = if smoke { 30 } else { 120 };
    let sweeps = if smoke { 2 } else { 5 };
    let params = clustered_params(m, d, 5);
    let cached_cfg = GibbsConfig {
        alpha: 1.0,
        burn_in: 0,
        sweeps,
        alpha_prior: None,
        exact_recompute: false,
    };
    let base = NormalInverseWishart::vague(d).expect("valid");
    let gibbs = DpNiwGibbs::new(base.clone(), cached_cfg).expect("valid config");
    let (par_ms, par_fit) = time_best(3, || {
        gibbs.fit(&params, &mut seeded_rng(9)).expect("fit succeeds")
    });
    let (ser_ms, ser_fit) = time_best(3, || {
        dre_parallel::with_serial(|| gibbs.fit(&params, &mut seeded_rng(9)).expect("fit succeeds"))
    });
    // The sampler consumes the identical RNG stream either way, so the
    // assignments must agree exactly; the joint trace doubles as an fp check.
    let mismatches = par_fit
        .assignments
        .iter()
        .zip(&ser_fit.assignments)
        .filter(|(x, y)| x != y)
        .count() as f64;
    let diff = mismatches.max(max_abs_diff(&par_fit.log_joint_trace, &ser_fit.log_joint_trace));
    kernels.push(kernel_entry(
        &format!("gibbs_sweep_scoring_m{m}"),
        ser_ms,
        par_ms,
        diff,
        0.0,
    ));
    println!("gibbs_sweep_scoring_m{m}: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    // -- Gibbs sweep: cached vs exact recompute (both forced serial) --------
    // The tentpole kernel: identical sampler, identical seed, scoring served
    // from per-cluster predictive caches vs refactorized from scratch at
    // every evaluation. Same RNG stream, so assignments and the cluster and
    // alpha traces must match exactly; the log-joint trace agrees to the
    // cache's documented tolerance.
    let exact = DpNiwGibbs::new(
        base,
        GibbsConfig {
            exact_recompute: true,
            ..cached_cfg
        },
    )
    .expect("valid config");
    let (cached_ms, cached_fit) = time_best(3, || {
        dre_parallel::with_serial(|| gibbs.fit(&params, &mut seeded_rng(9)).expect("fit succeeds"))
    });
    let (exact_ms, exact_fit) = time_best(3, || {
        dre_parallel::with_serial(|| exact.fit(&params, &mut seeded_rng(9)).expect("fit succeeds"))
    });
    let structural_mismatches = cached_fit
        .assignments
        .iter()
        .zip(&exact_fit.assignments)
        .filter(|(x, y)| x != y)
        .count()
        + cached_fit
            .cluster_trace
            .iter()
            .zip(&exact_fit.cluster_trace)
            .filter(|(x, y)| x != y)
            .count()
        + cached_fit
            .alpha_trace
            .iter()
            .zip(&exact_fit.alpha_trace)
            .filter(|(x, y)| x != y)
            .count();
    let trace_diff = max_abs_diff(&cached_fit.log_joint_trace, &exact_fit.log_joint_trace);
    let diff = (structural_mismatches as f64).max(trace_diff);
    let hit_rate = cached_fit.cache_stats.hit_rate();
    let name = format!("gibbs_sweep_cached_m{m}");
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("recompute_ms", JsonValue::from(exact_ms)),
            ("cached_ms", JsonValue::from(cached_ms)),
            ("speedup", JsonValue::from(exact_ms / cached_ms)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(1e-6)),
            ("cache_hit_rate", JsonValue::from(hit_rate)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 1e-6,
        expects_parallelism: false,
    });
    println!(
        "{name}: recompute {exact_ms:.2} ms, cached {cached_ms:.2} ms \
         ({:.2}x, hit rate {hit_rate:.4}), diff {diff:e}",
        exact_ms / cached_ms
    );

    // -- Cholesky rank-1 update vs refactorization --------------------------
    // Applies a chain of rank-1 updates to a d×d factor two ways: O(d²)
    // in-place updates against a from-scratch O(d³) refactorization of the
    // accumulated matrix at every step.
    let d = if smoke { 16 } else { 64 };
    let updates = 32;
    let mut rng = seeded_rng(17);
    let g = random_matrix(&mut rng, d, d);
    let spd = {
        let mut m = g.matmul(&g.transpose()).expect("square");
        m.add_diag(d as f64);
        m
    };
    let vs: Vec<Vec<f64>> = (0..updates)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let (rank1_ms, rank1_chol) = time_best(5, || {
        let mut chol = Cholesky::new(&spd).expect("spd");
        for v in &vs {
            chol.rank1_update(v).expect("update succeeds");
        }
        chol
    });
    let (refac_ms, refac_chol) = time_best(5, || {
        let mut acc = spd.clone();
        let mut chol = Cholesky::new(&acc).expect("spd");
        for v in &vs {
            for i in 0..d {
                let row = acc.row_mut(i);
                for (j, r) in row.iter_mut().enumerate() {
                    *r += v[i] * v[j];
                }
            }
            chol = Cholesky::new(&acc).expect("spd");
        }
        chol
    });
    let diff = max_abs_diff(
        rank1_chol.reconstruct().as_slice(),
        refac_chol.reconstruct().as_slice(),
    );
    let name = format!("chol_rank1_update_d{d}");
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("refactorize_ms", JsonValue::from(refac_ms)),
            ("rank1_ms", JsonValue::from(rank1_ms)),
            ("speedup", JsonValue::from(refac_ms / rank1_ms)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(1e-8)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 1e-8,
        expects_parallelism: false,
    });
    println!(
        "{name}: refactorize {refac_ms:.2} ms, rank-1 {rank1_ms:.2} ms ({:.2}x), diff {diff:e}",
        refac_ms / rank1_ms
    );

    // -- Variational EM E-step ----------------------------------------------
    let em_n = if smoke { 80 } else { 400 };
    let mut rng = seeded_rng(5);
    let centers = [
        MvNormal::isotropic(vec![4.0; 6], 0.05).expect("valid"),
        MvNormal::isotropic(vec![-4.0; 6], 0.05).expect("valid"),
        MvNormal::isotropic(vec![0.0; 6], 0.05).expect("valid"),
    ];
    let many: Vec<Vec<f64>> = (0..em_n)
        .map(|i| centers[i % centers.len()].sample(&mut rng))
        .collect();
    let vb = VariationalDpGmm::new(VariationalConfig {
        alpha: 1.0,
        truncation: 15,
        max_iters: if smoke { 5 } else { 30 },
        ..VariationalConfig::default()
    })
    .expect("valid config");
    let (par_ms, par_vb) = time_best(3, || {
        vb.fit(&many, &mut seeded_rng(9)).expect("fit succeeds")
    });
    let (ser_ms, ser_vb) = time_best(3, || {
        dre_parallel::with_serial(|| vb.fit(&many, &mut seeded_rng(9)).expect("fit succeeds"))
    });
    let diff = max_abs_diff(&par_vb.objective_trace, &ser_vb.objective_trace)
        .max(max_abs_diff(&par_vb.weights, &ser_vb.weights));
    kernels.push(kernel_entry(
        &format!("em_estep_variational_n{em_n}"),
        ser_ms,
        par_ms,
        diff,
        0.0,
    ));
    println!("em_estep_variational_n{em_n}: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    // -- Wasserstein dual evaluation ----------------------------------------
    let (n, d) = (if smoke { 500 } else { 10_000 }, 20);
    let mut rng = seeded_rng(7);
    let gen = MvNormal::isotropic(vec![0.0; d], 1.0).expect("valid");
    let xs = gen.sample_n(&mut rng, n);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| if x[0] >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    let ball = WassersteinBall::new(0.1, 1.0).expect("valid");
    let obj = WassersteinDualObjective::new(&xs, &ys, LogisticLoss, ball).expect("valid dataset");
    let packed: Vec<f64> = (0..d + 2).map(|i| 0.1 * i as f64).collect();
    let model = LinearModel::from_packed(&packed[..d + 1]);
    let (par_ms, (pv, pg, pr)) = time_best(5, || {
        let (v, g) = obj.value_and_gradient(&packed);
        (v, g, obj.exact_robust_risk(&model))
    });
    let (ser_ms, (sv, sg, sr)) = time_best(5, || {
        dre_parallel::with_serial(|| {
            let (v, g) = obj.value_and_gradient(&packed);
            (v, g, obj.exact_robust_risk(&model))
        })
    });
    let diff = (pv - sv)
        .abs()
        .max(max_abs_diff(&pg, &sg))
        .max((pr - sr).abs());
    kernels.push(kernel_entry(
        &format!("dual_evaluation_n{n}_d20"),
        ser_ms,
        par_ms,
        diff,
        0.0,
    ));
    println!("dual_evaluation_n{n}_d20: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    // -- serve loopback throughput ------------------------------------------
    // A real TCP prior server on loopback; requests/sec fetching a fitted
    // prior with 1 client thread vs a small fleet. The diff counts payloads
    // that arrived byte-different from the registered one — the frame CRC
    // makes that impossible, so the tolerance is zero.
    let pdim = 21; // packed parameters of a 20-feature model
    let prior = MixturePrior::new(
        (0..4)
            .map(|i| {
                let mut cov = Matrix::identity(pdim);
                cov.add_diag(0.5);
                (1.0, vec![i as f64; pdim], cov)
            })
            .collect(),
    )
    .expect("valid prior");
    let client_threads = dre_parallel::max_threads().clamp(2, 8);
    let mut server = PriorServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: client_threads,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    server.register_prior(1, &prior);
    let addr = server.addr();
    let expected = std::sync::Arc::new(dro_edge::transfer::serialize_prior(&prior));
    let total_requests = if smoke { 64 } else { 512 };
    let run_fleet = |threads: usize| -> usize {
        let per = total_requests / threads;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let expected = std::sync::Arc::clone(&expected);
                std::thread::spawn(move || {
                    let mut client =
                        PriorClient::new(TcpConnector::new(addr), RetryPolicy::default());
                    let mut corrupted = 0usize;
                    for _ in 0..per {
                        let payload =
                            client.fetch_prior_payload(1).expect("loopback fetch");
                        if payload.as_slice() != expected.as_slice() {
                            corrupted += 1;
                        }
                    }
                    corrupted
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    };
    let (one_ms, bad_one) = time_best(3, || run_fleet(1));
    let (fleet_ms, bad_fleet) = time_best(3, || run_fleet(client_threads));
    server.shutdown();
    let diff = (bad_one + bad_fleet) as f64;
    let rps_one = total_requests as f64 / (one_ms / 1e3);
    let rps_fleet = total_requests as f64 / (fleet_ms / 1e3);
    let name = format!("serve_loopback_rps_c{client_threads}");
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("one_client_ms", JsonValue::from(one_ms)),
            ("fleet_ms", JsonValue::from(fleet_ms)),
            ("speedup", JsonValue::from(one_ms / fleet_ms)),
            ("requests", JsonValue::from(total_requests)),
            ("rps_one_client", JsonValue::from(rps_one)),
            ("rps_fleet", JsonValue::from(rps_fleet)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: true,
    });
    println!(
        "{name}: 1 client {one_ms:.2} ms ({rps_one:.0} req/s), {client_threads} clients \
         {fleet_ms:.2} ms ({rps_fleet:.0} req/s), corrupted payloads {diff}"
    );

    // -- keep-alive serving hot path ----------------------------------------
    // Same fleet concurrency, two client modes against one server: a fresh
    // TCP connect per request (the serve_loopback_rps baseline behaviour)
    // vs one live stream per client with reusable scratch buffers. The
    // server answers every prior hit from its pre-encoded frame cache in
    // both modes, so the speedup isolates connection amortization. The
    // diff counts (a) payloads that arrived byte-different from the
    // registered one, (b) prior responses NOT served from the cache, and
    // (c) any byte mismatch between the cached frame and a fresh
    // `frame::encode` — the hot path must be fast *and* honest, so the
    // tolerance is zero.
    let mut server = PriorServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: client_threads,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    server.register_prior(1, &prior);
    let addr = server.addr();
    let run_mode = |keep_alive: bool| -> usize {
        let per = total_requests / client_threads;
        let handles: Vec<_> = (0..client_threads)
            .map(|_| {
                let expected = std::sync::Arc::clone(&expected);
                std::thread::spawn(move || {
                    let mut client =
                        PriorClient::new(TcpConnector::new(addr), RetryPolicy::default())
                            .keep_alive(keep_alive);
                    let mut corrupted = 0usize;
                    let mut payload = Vec::new();
                    for _ in 0..per {
                        client
                            .fetch_prior_payload_into(1, &mut payload)
                            .expect("loopback fetch");
                        if payload.as_slice() != expected.as_slice() {
                            corrupted += 1;
                        }
                    }
                    corrupted
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    };
    let (fresh_ms, bad_fresh) = time_best(3, || run_mode(false));
    let (keepalive_ms, bad_keepalive) = time_best(3, || run_mode(true));
    let server_metrics = server.metrics();
    let uncached = server_metrics
        .responses_ok
        .saturating_sub(server_metrics.prior_cache_hits) as usize;
    let cached_frame = server
        .state()
        .prior_entry(1)
        .expect("registered prior is cached")
        .frame;
    let fresh_encode = dre_serve::frame::encode(&dre_serve::frame::Message::PriorResponse {
        payload: (*expected).clone(),
    });
    let frame_mismatch = usize::from(cached_frame[..] != fresh_encode[..]);
    server.shutdown();
    let diff = (bad_fresh + bad_keepalive + uncached + frame_mismatch) as f64;
    let rps_fresh = total_requests as f64 / (fresh_ms / 1e3);
    let rps_keepalive = total_requests as f64 / (keepalive_ms / 1e3);
    let name = "serve_loopback_rps_keepalive".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("fresh_ms", JsonValue::from(fresh_ms)),
            ("keepalive_ms", JsonValue::from(keepalive_ms)),
            ("speedup", JsonValue::from(fresh_ms / keepalive_ms)),
            ("requests", JsonValue::from(total_requests)),
            ("clients", JsonValue::from(client_threads)),
            // Single-core numbers are self-describing: this is the host's
            // thread count, not the fleet size.
            ("threads", JsonValue::from(dre_parallel::max_threads())),
            ("rps_fresh", JsonValue::from(rps_fresh)),
            ("rps_keepalive", JsonValue::from(rps_keepalive)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: false,
    });
    println!(
        "{name}: fresh-connect {fresh_ms:.2} ms ({rps_fresh:.0} req/s), keep-alive \
         {keepalive_ms:.2} ms ({rps_keepalive:.0} req/s), speedup {:.2}x, \
         uncached {uncached}, frame mismatches {frame_mismatch}",
        fresh_ms / keepalive_ms
    );

    // -- per-core server runtime --------------------------------------------
    // The same keep-alive client fleet against two servers: one event-loop
    // worker (the PR 5 single-path behaviour, where every stream funnels
    // through one core) vs the per-core polled runtime with one worker per
    // core — plus a fresh-connect-per-request run against the per-core
    // server as the unamortized baseline. The headline `speedup` is
    // aggregate per-core req/s over the single-worker req/s. The diff
    // counts (a) payloads that arrived byte-different from the registered
    // one on either server, (b) prior responses NOT served from the
    // pre-encoded cache, and (c) any byte mismatch between each server's
    // cached frame and a fresh `frame::encode` — zero tolerance: scaling
    // must not cost a single corrupted or uncached byte. On hosts with
    // ≥ 4 cores the full (non-smoke) run additionally gates on ≥ 3×;
    // hosts below that can only timeshare the workers, so their rows are
    // stamped `"degraded": true` and exempted from the gate.
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mc_workers = dre_parallel::max_threads().clamp(4, 8);
    let mc_clients = mc_workers * 2;
    let mc_requests = if smoke { 128 } else { 4096 };
    let run_against =
        |addr: std::net::SocketAddr, keep_alive: bool, requests: usize| -> usize {
            let per = requests / mc_clients;
            let handles: Vec<_> = (0..mc_clients)
                .map(|_| {
                    let expected = std::sync::Arc::clone(&expected);
                    std::thread::spawn(move || {
                        let mut client =
                            PriorClient::new(TcpConnector::new(addr), RetryPolicy::default())
                                .keep_alive(keep_alive);
                        let mut corrupted = 0usize;
                        let mut payload = Vec::new();
                        for _ in 0..per {
                            client
                                .fetch_prior_payload_into(1, &mut payload)
                                .expect("loopback fetch");
                            if payload.as_slice() != expected.as_slice() {
                                corrupted += 1;
                            }
                        }
                        corrupted
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum()
        };
    let fresh_encode = dre_serve::frame::encode(&dre_serve::frame::Message::PriorResponse {
        payload: (*expected).clone(),
    });
    let mut mc_bad = 0usize;
    let mut audit_server = |server: &dre_serve::ServerHandle| {
        let m = server.metrics();
        mc_bad += m.responses_ok.saturating_sub(m.prior_cache_hits) as usize;
        let cached = server.state().prior_entry(1).expect("prior cached").frame;
        mc_bad += usize::from(cached[..] != fresh_encode[..]);
    };

    let mut single = PriorServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    single.register_prior(1, &prior);
    let (single_ms, bad_single) = time_best(3, || run_against(single.addr(), true, mc_requests));
    audit_server(&single);
    single.shutdown();

    let mut percore = PriorServer::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: mc_workers,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    percore.register_prior(1, &prior);
    let (mc_fresh_ms, bad_mc_fresh) =
        time_best(3, || run_against(percore.addr(), false, mc_requests));
    let (percore_ms, bad_percore) = time_best(3, || run_against(percore.addr(), true, mc_requests));
    audit_server(&percore);
    percore.shutdown();

    mc_bad += bad_single + bad_mc_fresh + bad_percore;
    let diff = mc_bad as f64;
    let rps_single = mc_requests as f64 / (single_ms / 1e3);
    let rps_mc_fresh = mc_requests as f64 / (mc_fresh_ms / 1e3);
    let rps_percore = mc_requests as f64 / (percore_ms / 1e3);
    let mc_speedup = single_ms / percore_ms;
    // A host that cannot truly run 4 workers at once timeshares them; its
    // speedup is scheduling noise, so the row is stamped rather than gated.
    let degraded_host = hw_threads < 4;
    let name = "serve_loopback_rps_multicore".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("fresh_ms", JsonValue::from(mc_fresh_ms)),
            ("single_worker_ms", JsonValue::from(single_ms)),
            ("percore_ms", JsonValue::from(percore_ms)),
            ("speedup", JsonValue::from(mc_speedup)),
            ("requests", JsonValue::from(mc_requests)),
            ("clients", JsonValue::from(mc_clients)),
            // Provenance: `threads` is the server worker threads the
            // per-core run actually spawned; `hw_threads` is what the
            // host could truly run at once. A report with hw_threads <
            // threads is timesharing, not scaling.
            ("threads", JsonValue::from(mc_workers)),
            ("hw_threads", JsonValue::from(hw_threads)),
            ("degraded", JsonValue::from(degraded_host)),
            ("rps_fresh", JsonValue::from(rps_mc_fresh)),
            ("rps_single_worker", JsonValue::from(rps_single)),
            ("rps_percore", JsonValue::from(rps_percore)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: true,
    });
    println!(
        "{name}: fresh {mc_fresh_ms:.2} ms ({rps_mc_fresh:.0} req/s), 1-worker keep-alive \
         {single_ms:.2} ms ({rps_single:.0} req/s), {mc_workers}-worker keep-alive \
         {percore_ms:.2} ms ({rps_percore:.0} req/s), speedup {mc_speedup:.2}x, \
         corrupted/uncached/mismatched {mc_bad}"
    );
    let mut perf_gate_failures = 0usize;
    if !smoke && !degraded_host && mc_speedup < 3.0 {
        eprintln!(
            "FAIL {name}: per-core speedup {mc_speedup:.2}x is below the 3x gate \
             on a {hw_threads}-core host"
        );
        perf_gate_failures += 1;
    }

    // -- sharded prior plane throughput -------------------------------------
    // The ROADMAP scale-out claim, measured end to end: the same routed
    // keep-alive client fleet fetching per-task priors from a 1-shard
    // plane vs a 4-shard plane. Each shard runs ONE event-loop worker, so
    // any aggregate win comes from sharding itself, not from giving the
    // bigger plane more threads per server. Every client routes through a
    // `ShardDirectory`-backed `ShardConnector`; steady-state routing must
    // be clean, so the diff counts (a) payloads that arrived
    // byte-different from the registered one, (b) client retries, and
    // (c) server-side misroutes summed across every shard — zero
    // tolerance. On hosts with ≥ 4 cores the full (non-smoke) run gates
    // on ≥ 2× aggregate req/s; degraded rows are stamped and exempted.
    let shard_tasks: Vec<u64> = (1..=8).collect();
    let shard_clients = shard_tasks.len();
    let shard_requests = if smoke { 128 } else { 4096 };
    let run_plane = |shards: usize| -> (f64, usize) {
        let mut plane = ShardedPriorPlane::bind(ShardPlaneConfig {
            shards,
            replication: 2.min(shards),
            serve: ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ..ShardPlaneConfig::default()
        })
        .expect("bind sharded plane");
        for &task in &shard_tasks {
            plane.register_payload(task, (*expected).clone());
        }
        let directory = plane.directory();
        let per = shard_requests / shard_clients;
        let (ms, bad) = time_best(3, || {
            let handles: Vec<_> = shard_tasks
                .iter()
                .map(|&task| {
                    let expected = std::sync::Arc::clone(&expected);
                    let directory = std::sync::Arc::clone(&directory);
                    std::thread::spawn(move || {
                        let mut client = directory.client_for(task, RetryPolicy::default());
                        let mut faults = 0usize;
                        let mut payload = Vec::new();
                        for _ in 0..per {
                            client
                                .fetch_prior_payload_into(task, &mut payload)
                                .expect("routed fetch");
                            if payload.as_slice() != expected.as_slice() {
                                faults += 1;
                            }
                        }
                        faults + client.metrics().retries as usize
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum::<usize>()
        });
        let misroutes: u64 = (0..shards)
            .map(|i| plane.shard_metrics(i).map_or(0, |m| m.misroutes))
            .sum();
        plane.shutdown();
        (ms, bad + misroutes as usize)
    };
    let (one_shard_ms, bad_one_shard) = run_plane(1);
    let (four_shard_ms, bad_four_shard) = run_plane(4);
    let diff = (bad_one_shard + bad_four_shard) as f64;
    let rps_one_shard = shard_requests as f64 / (one_shard_ms / 1e3);
    let rps_four_shards = shard_requests as f64 / (four_shard_ms / 1e3);
    let sharded_speedup = one_shard_ms / four_shard_ms;
    let name = "serve_sharded_rps".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("one_shard_ms", JsonValue::from(one_shard_ms)),
            ("four_shard_ms", JsonValue::from(four_shard_ms)),
            ("speedup", JsonValue::from(sharded_speedup)),
            ("requests", JsonValue::from(shard_requests)),
            ("clients", JsonValue::from(shard_clients)),
            ("shards", JsonValue::from(4usize)),
            ("workers_per_shard", JsonValue::from(1usize)),
            // Provenance: aggregate scaling needs the shards to truly run
            // in parallel, so record what the host could actually do.
            ("threads", JsonValue::from(dre_parallel::max_threads())),
            ("hw_threads", JsonValue::from(hw_threads)),
            ("degraded", JsonValue::from(degraded_host)),
            ("rps_one_shard", JsonValue::from(rps_one_shard)),
            ("rps_four_shards", JsonValue::from(rps_four_shards)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: true,
    });
    println!(
        "{name}: 1 shard {one_shard_ms:.2} ms ({rps_one_shard:.0} req/s), 4 shards \
         {four_shard_ms:.2} ms ({rps_four_shards:.0} req/s), speedup {sharded_speedup:.2}x, \
         corrupted/retried/misrouted {diff}"
    );
    if !smoke && !degraded_host && sharded_speedup < 2.0 {
        eprintln!(
            "FAIL {name}: 4-shard aggregate speedup {sharded_speedup:.2}x is below the \
             2x gate on a {hw_threads}-core host"
        );
        perf_gate_failures += 1;
    }

    // -- edge runtime under chaos: fits/sec and the floor invariant ---------
    // The graceful-degradation runtime (breaker + stale cache + local
    // fallback) over healthy vs. heavily faulted in-memory links. The diff
    // counts accuracy readings that fell below that device's own local-only
    // ERM floor — the degradation ladder guarantees zero, so the tolerance
    // is zero and CI fails if a degraded fit ever underperforms the
    // fallback the runtime could have used instead.
    let fleet_devices = if smoke { 2 } else { 4 };
    let fleet_rounds = if smoke { 3 } else { 8 };
    let sc = degraded_scenario(1_300, fleet_devices);
    let (healthy_ms, healthy_readings) = time_best(2, || {
        let mut fleet = spawn_degraded_fleet(&sc, 0.0, 1);
        run_degraded_rounds(&sc, &mut fleet, fleet_rounds)
    });
    let (degraded_ms, degraded_readings) = time_best(2, || {
        let mut fleet = spawn_degraded_fleet(&sc, 0.6, 1);
        run_degraded_rounds(&sc, &mut fleet, fleet_rounds)
    });
    let diff =
        (readings_below_floor(&healthy_readings) + readings_below_floor(&degraded_readings)) as f64;
    let fits = (fleet_devices * fleet_rounds) as f64;
    let rps_healthy = fits / (healthy_ms / 1e3);
    let rps_degraded = fits / (degraded_ms / 1e3);
    let name = "edge_runtime_degraded_rps".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("healthy_ms", JsonValue::from(healthy_ms)),
            ("degraded_ms", JsonValue::from(degraded_ms)),
            ("fits", JsonValue::from(fits)),
            ("fits_per_sec_healthy", JsonValue::from(rps_healthy)),
            ("fits_per_sec_degraded", JsonValue::from(rps_degraded)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: false,
    });
    println!(
        "{name}: healthy {healthy_ms:.2} ms ({rps_healthy:.0} fits/s), degraded \
         {degraded_ms:.2} ms ({rps_degraded:.0} fits/s), readings below floor {diff}"
    );

    // -- streaming learner refresh: reports/sec through the SIR filter ------
    // The closed-loop kernel: push a fleet's pooled `ModelReport` vectors
    // through the SIR particle filter and collapse the ensemble into a
    // refreshed DP prior. Particles carry their own seeded RNGs, so the
    // serial and parallel particle loops must produce bit-identical priors
    // (every differing f64 counts a whole unit into the diff); the
    // streamed collapse must also agree with an exact collapsed-Gibbs
    // refit on the same pooled reports — both paths share the collapse
    // rule, so a matched partition leaves only fp noise under the 1e-6
    // gate, and a partition mismatch counts whole units.
    let d = 6;
    let m = if smoke { 24 } else { 192 };
    let sir_reports: Vec<Vec<f64>> = {
        let mut rng = seeded_rng(21);
        let hi = MvNormal::isotropic(vec![4.0; d], 0.01).expect("valid");
        let lo = MvNormal::isotropic(vec![-4.0; d], 0.01).expect("valid");
        (0..m)
            .map(|i| if i % 2 == 0 { hi.sample(&mut rng) } else { lo.sample(&mut rng) })
            .collect()
    };
    let sir_base =
        NormalInverseWishart::new(vec![0.0; d], 0.05, Matrix::identity(d), d as f64 + 2.0)
            .expect("valid base");
    let sir_cfg = SirConfig {
        num_particles: 32,
        alpha: 1.0,
        ess_fraction: 0.5,
        seed: 17,
        ..SirConfig::default()
    };
    let stream_refresh = || {
        let mut filter =
            SirDpFilter::new(sir_base.clone(), sir_cfg.clone()).expect("valid config");
        for x in &sir_reports {
            filter.push(x).expect("push succeeds");
        }
        filter.to_mixture_prior().expect("collapse succeeds")
    };
    let (par_ms, par_prior) = time_best(3, &stream_refresh);
    let (ser_ms, ser_prior) = time_best(3, || dre_parallel::with_serial(stream_refresh));
    let flatten = |p: &MixturePrior| -> Vec<f64> {
        let mut out = Vec::new();
        for c in p.components() {
            out.push(c.weight());
            out.extend_from_slice(c.mean());
            out.extend_from_slice(c.cov().as_slice());
        }
        out
    };
    let (ser_flat, par_flat) = (flatten(&ser_prior), flatten(&par_prior));
    let bit_mismatches = if ser_flat.len() != par_flat.len() {
        1.0
    } else {
        ser_flat.iter().zip(&par_flat).filter(|(a, b)| a != b).count() as f64
    };
    let gibbs = DpNiwGibbs::new(
        sir_base.clone(),
        GibbsConfig {
            alpha: 1.0,
            burn_in: 30,
            sweeps: 30,
            alpha_prior: None,
            exact_recompute: false,
        },
    )
    .expect("valid config");
    let fit = gibbs.fit(&sir_reports, &mut seeded_rng(99)).expect("fit succeeds");
    let refit = gibbs
        .to_mixture_prior(&sir_reports, &fit.assignments)
        .expect("collapse succeeds");
    let sorted = |p: &MixturePrior| -> Vec<(f64, Vec<f64>, Matrix)> {
        let mut out: Vec<_> = p
            .components()
            .iter()
            .map(|c| (c.weight(), c.mean().to_vec(), c.cov()))
            .collect();
        out.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("finite weights")
                .then(a.1[0].partial_cmp(&b.1[0]).expect("finite means"))
        });
        out
    };
    let refit_divergence = if ser_prior.num_components() != refit.num_components() {
        (ser_prior.num_components() as f64 - refit.num_components() as f64).abs()
    } else {
        sorted(&ser_prior)
            .iter()
            .zip(&sorted(&refit))
            .map(|((wa, ma, ca), (wb, mb, cb))| {
                (wa - wb)
                    .abs()
                    .max(max_abs_diff(ma, mb))
                    .max(max_abs_diff(ca.as_slice(), cb.as_slice()))
            })
            .fold(0.0, f64::max)
    };
    let diff = bit_mismatches.max(refit_divergence);
    let rps_serial = m as f64 / (ser_ms / 1e3);
    let rps_parallel = m as f64 / (par_ms / 1e3);
    let name = "learner_refresh_reports_per_sec".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("serial_ms", JsonValue::from(ser_ms)),
            ("parallel_ms", JsonValue::from(par_ms)),
            ("speedup", JsonValue::from(ser_ms / par_ms)),
            ("reports", JsonValue::from(m)),
            ("particles", JsonValue::from(sir_cfg.num_particles)),
            ("reports_per_sec_serial", JsonValue::from(rps_serial)),
            ("reports_per_sec_parallel", JsonValue::from(rps_parallel)),
            ("refit_divergence", JsonValue::from(refit_divergence)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(1e-6)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 1e-6,
        expects_parallelism: true,
    });
    println!(
        "{name}: serial {ser_ms:.2} ms ({rps_serial:.0} reports/s), parallel {par_ms:.2} ms \
         ({rps_parallel:.0} reports/s), bit mismatches {bit_mismatches}, refit divergence \
         {refit_divergence:e}"
    );

    // -- report admission: gate overhead on the same refresh stream ---------
    // The Byzantine-admission gate rides the refresh drain loop: score each
    // report with the filter's collapsed predictive marginal, consult the
    // rolling-quantile gate and the reputation ledger, then push. On this
    // all-honest stream every report must be admitted, so the gated refresh
    // collapses to the bit-identical prior (any f64 mismatch or gated
    // report counts whole units into the diff) — and the wall-clock it
    // adds over the bare refresh is the price of robustness, gated at
    // < 10% of `learner_refresh_reports_per_sec`.
    let gated_refresh = || {
        let mut filter =
            SirDpFilter::new(sir_base.clone(), sir_cfg.clone()).expect("valid config");
        // A wide margin keeps the two alternating honest clusters inside
        // the gate even while the rolling window is still short.
        let mut adm = AdmissionState::new(AdmissionConfig {
            margin: 32.0,
            ..AdmissionConfig::default()
        })
        .expect("valid admission config");
        let mut gated = 0u64;
        for (i, x) in sir_reports.iter().enumerate() {
            let score = filter.score_report(x).expect("score succeeds");
            if adm.admit(9, i as u64 % 16, Some(score)).admitted() {
                filter.push(x).expect("push succeeds");
            } else {
                gated += 1;
            }
        }
        (filter.to_mixture_prior().expect("collapse succeeds"), gated)
    };
    let (adm_ms, (adm_prior, gated)) = time_best(3, &gated_refresh);
    let adm_flat = flatten(&adm_prior);
    let adm_mismatches = if adm_flat.len() != par_flat.len() {
        1.0
    } else {
        adm_flat.iter().zip(&par_flat).filter(|(a, b)| a != b).count() as f64
    };
    let overhead = adm_ms / par_ms - 1.0;
    let diff = adm_mismatches + gated as f64;
    let rps_admitted = m as f64 / (adm_ms / 1e3);
    let name = "report_admission_reports_per_sec".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("refresh_ms", JsonValue::from(par_ms)),
            ("admitted_ms", JsonValue::from(adm_ms)),
            ("overhead_fraction", JsonValue::from(overhead)),
            ("reports", JsonValue::from(m)),
            ("reports_gated", JsonValue::from(gated as f64)),
            ("reports_per_sec", JsonValue::from(rps_admitted)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: false,
    });
    println!(
        "{name}: bare refresh {par_ms:.2} ms, gated refresh {adm_ms:.2} ms \
         ({rps_admitted:.0} reports/s, overhead {:.1}%), gated {gated}, prior \
         mismatches {adm_mismatches}",
        overhead * 100.0
    );
    if !smoke && !degraded_host && overhead >= 0.10 {
        eprintln!(
            "FAIL {name}: admission overhead {:.1}% is above the 10% gate",
            overhead * 100.0
        );
        perf_gate_failures += 1;
    }

    // -- event executor throughput: events/sec at fleet scale ---------------
    // The flat-state simulator core pushing a full prior-transfer fleet
    // through the one-big-switch fabric: every request, transport ack,
    // payload segment, and EM completion is one heap-ordered event. The
    // scenario is the same clean-completion shape the release scale gate
    // (`tests/scale.rs`) uses — port queues sized to absorb the incast,
    // RTO parked above the drain time — so the measured rate is pure
    // executor throughput, not timer churn. Determinism doubles as the
    // correctness check: a rerun must reproduce the whole report (every
    // per-device f64 included) bit-for-bit, and any mismatch, drop, or
    // retransmission counts a whole unit into the diff. Full runs on
    // non-degraded hosts gate at ≥ 1M events/sec.
    let sim_devices: usize = if smoke { 5_000 } else { 100_000 };
    let sim_fleet = {
        let topo = Topology::one_big_switch(Link::new_ms(1.0, 1e12)).with_switch(SwitchConfig {
            queue_capacity: 2 * sim_devices as u32 + 16,
            rto: SimDuration::from_secs_f64(3600.0),
            ..SwitchConfig::default()
        });
        let mut sc = Scenario::new(ComputeModel::default()).with_topology(topo);
        for _ in 0..sim_devices {
            sc.add_device(DeviceSpec {
                link: Link::new_ms(5.0, 1e6),
                strategy: Strategy::PriorTransfer {
                    samples: 100,
                    dim: 8,
                    iterations: 50,
                    em_rounds: 4,
                    prior_components: 2,
                },
            });
        }
        sc
    };
    let (sim_ms, sim_report) = time_best(3, || sim_fleet.run());
    let sim_rerun = sim_fleet.run();
    let diff = f64::from(sim_rerun != sim_report)
        + f64::from(sim_report.messages_dropped != 0)
        + f64::from(sim_report.bytes_retransmitted != 0);
    let events_per_sec = sim_report.events_executed as f64 / (sim_ms / 1e3);
    let name = "edgesim_events_per_sec".to_string();
    kernels.push(KernelReport {
        json: JsonValue::object([
            ("name", JsonValue::from(name.as_str())),
            ("run_ms", JsonValue::from(sim_ms)),
            ("devices", JsonValue::from(sim_devices)),
            (
                "events_executed",
                JsonValue::from(sim_report.events_executed as usize),
            ),
            ("events_per_sec", JsonValue::from(events_per_sec)),
            ("hw_threads", JsonValue::from(hw_threads)),
            ("degraded", JsonValue::from(degraded_host)),
            ("max_abs_diff", JsonValue::from(diff)),
            ("tolerance", JsonValue::from(0.0)),
        ]),
        name: name.clone(),
        diff,
        tolerance: 0.0,
        expects_parallelism: false,
    });
    println!(
        "{name}: {sim_devices} devices, {} events in {sim_ms:.2} ms \
         ({events_per_sec:.0} events/sec), rerun/drop/retx faults {diff}",
        sim_report.events_executed
    );
    if !smoke && !degraded_host && events_per_sec < 1e6 {
        eprintln!(
            "FAIL {name}: {events_per_sec:.0} events/sec is below the 1M events/sec \
             gate on a {hw_threads}-core host"
        );
        perf_gate_failures += 1;
    }

    // -- tolerance gate + report --------------------------------------------
    let mut violations = perf_gate_failures;
    for k in &kernels {
        // NaN must fail the gate too, so test "not within tolerance".
        if k.diff.is_nan() || k.diff > k.tolerance {
            eprintln!(
                "FAIL {}: max_abs_diff {:e} exceeds tolerance {:e}",
                k.name, k.diff, k.tolerance
            );
            violations += 1;
        }
    }
    // Provenance gate: a full run that timed thread-scaling kernels on one
    // worker thread must not pass quietly — its recorded speedups would be
    // ~1x noise dressed up as measurements. (The JSON is still written
    // below so the misleading provenance is at least visible.)
    let one_thread_offenders: Vec<String> = if dre_parallel::max_threads() <= 1 {
        kernels
            .iter()
            .filter(|k| k.expects_parallelism)
            .map(|k| k.name.clone())
            .collect()
    } else {
        Vec::new()
    };

    if smoke {
        println!("smoke mode: skipping BENCH_parallel.json rewrite");
    } else {
        let report = JsonValue::object([
            (
                "generated_by",
                JsonValue::from("cargo run --release -p dre-bench --bin bench_parallel"),
            ),
            ("threads", JsonValue::from(dre_parallel::max_threads())),
            ("hw_threads", JsonValue::from(hw_threads)),
            (
                "parallel_feature",
                JsonValue::from(cfg!(feature = "parallel")),
            ),
            (
                "kernels",
                JsonValue::array(kernels.into_iter().map(|k| k.json).collect::<Vec<_>>()),
            ),
            ("serial_baselines", JsonValue::array([baseline])),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        std::fs::write(path, report.pretty()).expect("write BENCH_parallel.json");
        println!("wrote {path}");
    }

    if !smoke && !one_thread_offenders.is_empty() {
        eprintln!(
            "FAIL: parallelism-expecting kernel(s) ran with a single worker thread: {}",
            one_thread_offenders.join(", ")
        );
        eprintln!(
            "  re-run on a multi-core host (or set DRE_NUM_THREADS > 1) so the \
             recorded speedups and the \"threads\" provenance mean something"
        );
        violations += 1;
    }

    if violations > 0 {
        eprintln!("{violations} kernel(s) out of tolerance");
        std::process::exit(1);
    }
}
