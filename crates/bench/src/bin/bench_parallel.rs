//! Serial-vs-parallel wall-time comparison for the workspace's hot kernels.
//!
//! Writes `BENCH_parallel.json` at the repository root: per kernel the best
//! serial and parallel wall time, the speedup, and a serial/parallel output
//! diff (which must be 0 — the execution layer guarantees bit-identical
//! results). On single-core machines the thread speedups hover around 1×,
//! so the report also times the seed's row-at-a-time matmul against the
//! current row-blocked kernel, which shows the serial-path win; re-run on a
//! multi-core machine to measure the threaded speedups.

use std::time::Instant;

use dre_bayes::{DpNiwGibbs, GibbsConfig, VariationalConfig, VariationalDpGmm};
use dre_bench::json::JsonValue;
use dre_linalg::Matrix;
use dre_models::{LinearModel, LogisticLoss};
use dre_optim::Objective as _;
use dre_prob::{seeded_rng, MvNormal, NormalInverseWishart};
use dre_robust::{WassersteinBall, WassersteinDualObjective};
use rand::Rng;

/// Best-of-`reps` wall time in milliseconds, plus the last result.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn random_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

/// The seed's streaming-axpy matmul (zero-skip, no tiling, no transpose) —
/// kept here as the timing baseline for the tiled kernel.
fn seed_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = vec![0.0; a.rows() * b.cols()];
    for i in 0..a.rows() {
        let orow = &mut out[i * b.cols()..(i + 1) * b.cols()];
        for (k, &aik) in a.row(i).iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            for (o, &bkj) in orow.iter_mut().zip(b.row(k)) {
                *o += aik * bkj;
            }
        }
    }
    Matrix::from_vec(a.rows(), b.cols(), out).expect("shape matches data")
}

fn kernel_entry(name: &str, serial_ms: f64, parallel_ms: f64, diff: f64) -> JsonValue {
    JsonValue::object([
        ("name", JsonValue::from(name)),
        ("serial_ms", JsonValue::from(serial_ms)),
        ("parallel_ms", JsonValue::from(parallel_ms)),
        ("speedup", JsonValue::from(serial_ms / parallel_ms)),
        ("max_abs_diff", JsonValue::from(diff)),
    ])
}

fn main() {
    let mut kernels: Vec<JsonValue> = Vec::new();

    // -- matmul (tiled kernel, row-parallel) --------------------------------
    let n = 768;
    let mut rng = seeded_rng(11);
    let a = random_matrix(&mut rng, n, n);
    let b = random_matrix(&mut rng, n, n);
    let (par_ms, par_out) = time_best(5, || a.matmul(&b).expect("dims agree"));
    let (ser_ms, ser_out) = time_best(5, || {
        dre_parallel::with_serial(|| a.matmul(&b).expect("dims agree"))
    });
    let diff = max_abs_diff(par_out.as_slice(), ser_out.as_slice());
    kernels.push(kernel_entry(&format!("matmul_{n}x{n}"), ser_ms, par_ms, diff));
    println!("matmul_{n}x{n}: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    let (seed_ms, seed_out) = time_best(5, || seed_matmul(&a, &b));
    let baseline = JsonValue::object([
        (
            "name",
            JsonValue::from(format!("matmul_{n}x{n}_seed_kernel_vs_blocked").as_str()),
        ),
        ("baseline_ms", JsonValue::from(seed_ms)),
        ("tuned_ms", JsonValue::from(ser_ms)),
        ("speedup", JsonValue::from(seed_ms / ser_ms)),
        (
            "max_abs_diff",
            JsonValue::from(max_abs_diff(seed_out.as_slice(), ser_out.as_slice())),
        ),
    ]);
    println!("  seed kernel {seed_ms:.2} ms -> blocked {ser_ms:.2} ms ({:.2}x)", seed_ms / ser_ms);

    // -- Gibbs sweep scoring ------------------------------------------------
    let d = 6;
    let m = 120;
    let mut rng = seeded_rng(5);
    let centers = [
        MvNormal::isotropic(vec![4.0; d], 0.05).expect("valid"),
        MvNormal::isotropic(vec![-4.0; d], 0.05).expect("valid"),
        MvNormal::isotropic(vec![0.0; d], 0.05).expect("valid"),
    ];
    let params: Vec<Vec<f64>> = (0..m)
        .map(|i| centers[i % centers.len()].sample(&mut rng))
        .collect();
    let gibbs = DpNiwGibbs::new(
        NormalInverseWishart::vague(d).expect("valid"),
        GibbsConfig {
            alpha: 1.0,
            burn_in: 0,
            sweeps: 5,
            alpha_prior: None,
        },
    )
    .expect("valid config");
    let (par_ms, par_fit) = time_best(3, || {
        gibbs.fit(&params, &mut seeded_rng(9)).expect("fit succeeds")
    });
    let (ser_ms, ser_fit) = time_best(3, || {
        dre_parallel::with_serial(|| gibbs.fit(&params, &mut seeded_rng(9)).expect("fit succeeds"))
    });
    // The sampler consumes the identical RNG stream either way, so the
    // assignments must agree exactly; the joint trace doubles as an fp check.
    let mismatches = par_fit
        .assignments
        .iter()
        .zip(&ser_fit.assignments)
        .filter(|(x, y)| x != y)
        .count() as f64;
    let diff = mismatches.max(max_abs_diff(&par_fit.log_joint_trace, &ser_fit.log_joint_trace));
    kernels.push(kernel_entry("gibbs_sweep_scoring_m120", ser_ms, par_ms, diff));
    println!("gibbs_sweep_scoring_m120: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    // -- Variational EM E-step ----------------------------------------------
    let mut rng = seeded_rng(5);
    let many: Vec<Vec<f64>> = (0..400)
        .map(|i| centers[i % centers.len()].sample(&mut rng))
        .collect();
    let vb = VariationalDpGmm::new(VariationalConfig {
        alpha: 1.0,
        truncation: 15,
        max_iters: 30,
        ..VariationalConfig::default()
    })
    .expect("valid config");
    let (par_ms, par_vb) = time_best(3, || {
        vb.fit(&many, &mut seeded_rng(9)).expect("fit succeeds")
    });
    let (ser_ms, ser_vb) = time_best(3, || {
        dre_parallel::with_serial(|| vb.fit(&many, &mut seeded_rng(9)).expect("fit succeeds"))
    });
    let diff = max_abs_diff(&par_vb.objective_trace, &ser_vb.objective_trace)
        .max(max_abs_diff(&par_vb.weights, &ser_vb.weights));
    kernels.push(kernel_entry("em_estep_variational_n400", ser_ms, par_ms, diff));
    println!("em_estep_variational_n400: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    // -- Wasserstein dual evaluation ----------------------------------------
    let (n, d) = (10_000, 20);
    let mut rng = seeded_rng(7);
    let gen = MvNormal::isotropic(vec![0.0; d], 1.0).expect("valid");
    let xs = gen.sample_n(&mut rng, n);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| if x[0] >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    let ball = WassersteinBall::new(0.1, 1.0).expect("valid");
    let obj = WassersteinDualObjective::new(&xs, &ys, LogisticLoss, ball).expect("valid dataset");
    let packed: Vec<f64> = (0..d + 2).map(|i| 0.1 * i as f64).collect();
    let model = LinearModel::from_packed(&packed[..d + 1]);
    let (par_ms, (pv, pg, pr)) = time_best(5, || {
        let (v, g) = obj.value_and_gradient(&packed);
        (v, g, obj.exact_robust_risk(&model))
    });
    let (ser_ms, (sv, sg, sr)) = time_best(5, || {
        dre_parallel::with_serial(|| {
            let (v, g) = obj.value_and_gradient(&packed);
            (v, g, obj.exact_robust_risk(&model))
        })
    });
    let diff = (pv - sv)
        .abs()
        .max(max_abs_diff(&pg, &sg))
        .max((pr - sr).abs());
    kernels.push(kernel_entry("dual_evaluation_n10000_d20", ser_ms, par_ms, diff));
    println!("dual_evaluation_n10000_d20: serial {ser_ms:.2} ms, parallel {par_ms:.2} ms, diff {diff:e}");

    // -- report -------------------------------------------------------------
    let report = JsonValue::object([
        (
            "generated_by",
            JsonValue::from("cargo run --release -p dre-bench --bin bench_parallel"),
        ),
        ("threads", JsonValue::from(dre_parallel::max_threads())),
        (
            "parallel_feature",
            JsonValue::from(cfg!(feature = "parallel")),
        ),
        ("kernels", JsonValue::array(kernels)),
        ("serial_baselines", JsonValue::array([baseline])),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, report.pretty()).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
