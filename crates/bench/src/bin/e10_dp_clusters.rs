//! E10 — Dirichlet-process clustering behaviour.
//!
//! Two views: (a) the prior's own law — occupied CRP tables grow like
//! `α·ln(1 + n/α)`; (b) the posterior — with data from a fixed number of
//! true clusters, both the Gibbs and variational fits should *saturate* at
//! the true count instead of following the prior's logarithmic growth.

use dre_bayes::Crp;
use dre_bench::{fmt_f, standard_family, Table};
use dro_edge::{CloudKnowledge, PriorFitMethod};

fn main() {
    // (a) Prior law: exact expectation vs. Monte Carlo.
    let mut prior_table = Table::new(
        "E10a",
        "CRP occupied tables: exact E[K_n] vs. Monte Carlo (α = 1)",
        &["n", "exact", "monte-carlo"],
    );
    let crp = Crp::new(1.0).expect("valid alpha");
    let mut rng = dre_prob::seeded_rng(1010);
    for n in [10usize, 50, 100, 500, 1000] {
        let exact = crp.expected_tables(n);
        let trials = 300;
        let mc: f64 = (0..trials)
            .map(|_| (crp.sample_partition(&mut rng, n).iter().max().unwrap() + 1) as f64)
            .sum::<f64>()
            / trials as f64;
        prior_table.push_row(vec![n.to_string(), fmt_f(exact), fmt_f(mc)]);
    }
    prior_table.emit();

    // (b) Posterior saturation: the family has exactly 3 true clusters.
    let (family, mut rng) = standard_family(1011);
    let mut posterior_table = Table::new(
        "E10b",
        "discovered parameter clusters vs. source tasks (3 true clusters)",
        &["M", "gibbs", "variational", "crp-prior-E[K]"],
    );
    for m in [6usize, 12, 24, 48, 96] {
        // Train source models once, fit both ways on the same parameters.
        let cloud_gibbs = CloudKnowledge::from_family(&family, m, 400, 1.0, &mut rng)
            .expect("gibbs cloud");
        let cloud_vb = CloudKnowledge::from_source_models(
            cloud_gibbs.source_models().to_vec(),
            1.0,
            PriorFitMethod::Variational,
            &mut rng,
        )
        .expect("vb cloud");
        posterior_table.push_row(vec![
            m.to_string(),
            cloud_gibbs.discovered_clusters().to_string(),
            cloud_vb.discovered_clusters().to_string(),
            fmt_f(crp.expected_tables(m)),
        ]);
    }
    posterior_table.emit();
}
