//! E4 — convergence of the EM-inspired relaxation.
//!
//! Plots (as a table of series) the exact objective
//! `robust risk + (ρ/n)(−log π)` against the EM round for several devices.
//! Expected shape: monotone non-increasing traces that flatten within a
//! handful of rounds — the majorize–minimize guarantee in action.

use dre_bench::{fmt_f, standard_cloud, standard_family, standard_learner_config, Table};
use dro_edge::{EdgeLearner, EdgeLearnerConfig};

fn main() {
    let (family, mut rng) = standard_family(404);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let config = EdgeLearnerConfig {
        em_rounds: 10,
        em_tol: 0.0, // run all rounds so every trace has equal length
        ..standard_learner_config()
    };

    let mut table = Table::new(
        "E4",
        "exact objective per EM round (5 devices, n = 25)",
        &[
            "round", "device-1", "device-2", "device-3", "device-4", "device-5",
        ],
    );

    let mut traces: Vec<Vec<f64>> = Vec::new();
    for _ in 0..5 {
        let task = family.sample_task(&mut rng);
        let train = task.generate(25, &mut rng);
        let learner =
            EdgeLearner::new(config, cloud.prior().clone()).expect("config valid");
        let fit = learner.fit(&train).expect("fit failed");
        traces.push(fit.objective_trace);
    }
    let rounds = traces.iter().map(|t| t.len()).max().unwrap_or(0);
    for r in 0..rounds {
        let mut row = vec![r.to_string()];
        for trace in &traces {
            // Converged traces hold their final value.
            let v = trace.get(r).or(trace.last()).copied().unwrap_or(f64::NAN);
            row.push(fmt_f(v));
        }
        table.push_row(row);
    }
    table.emit();

    // Report the monotonicity check the paper's MM argument promises.
    let violations: usize = traces
        .iter()
        .map(|t| t.windows(2).filter(|w| w[1] > w[0] + 1e-3).count())
        .sum();
    println!("monotonicity violations beyond smoothing tolerance: {violations}");
}
