//! E5 — per-scenario accuracy table.
//!
//! Four evaluation scenarios stress different assumptions:
//!
//! * `in-cluster` — the edge task comes from a cluster the cloud has seen;
//! * `novel-task` — the edge task's parameter sits far from every cloud
//!   cluster (only the DP's fresh-table mass covers it);
//! * `covariate-shift` — test features are shifted;
//! * `label-noise` — training labels are corrupted at 15 %.
//!
//! Expected shape: DRO+DP wins or ties everywhere; cloud-only collapses on
//! novel tasks; plain ERM suffers most under label noise and shift.

use dre_bench::{fmt_acc, standard_cloud, standard_family, standard_learner_config, Table};
use dre_data::shift;
use dre_models::metrics;
use dro_edge::evaluate::{run_methods, Aggregate, Method};

fn main() {
    let (family, mut rng) = standard_family(505);
    let cloud = standard_cloud(&family, 40, 1.0, &mut rng);
    let config = standard_learner_config();
    let trials = 15;
    let n = 25;
    let methods = Method::ALL;

    let scenarios = ["in-cluster", "novel-task", "covariate-shift", "label-noise"];
    let mut table = Table::new(
        "E5",
        "accuracy per scenario (n = 25, 15 trials)",
        &[
            "scenario", "local-erm", "dro-only", "map-only", "cloud-only", "dro+dp", "oracle",
        ],
    );

    for scenario in scenarios {
        let mut aggs: Vec<(Method, Aggregate)> =
            methods.iter().map(|&m| (m, Aggregate::default())).collect();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let (train, test, eval_task) = match scenario {
                "in-cluster" => {
                    let train = task.generate(n, &mut rng);
                    let test = task.generate(800, &mut rng);
                    (train, test, task.clone())
                }
                "novel-task" => {
                    // Build a task whose parameter is orthogonal-ish to all
                    // cluster centers: flip the sign of the sampled θ*.
                    // (Novelty in parameter space, same data mechanism.)
                    let novel = make_novel_task(&family, &mut rng);
                    let train = novel.generate(n, &mut rng);
                    let test = novel.generate(800, &mut rng);
                    (train, test, novel)
                }
                "covariate-shift" => {
                    let train = task.generate(n, &mut rng);
                    let test = task.generate(800, &mut rng);
                    let dir = task.model().weights().to_vec();
                    let test = shift::directional_shift(&test, &dir, 1.0).expect("shift");
                    (train, test, task.clone())
                }
                "label-noise" => {
                    let train = task.generate(n, &mut rng);
                    let train =
                        shift::label_flip_noise(&train, 0.15, &mut rng).expect("noise");
                    let test = task.generate(800, &mut rng);
                    (train, test, task.clone())
                }
                _ => unreachable!(),
            };
            let results = run_methods(
                &methods,
                &train,
                &test,
                cloud.prior(),
                &config,
                Some(&eval_task),
            )
            .expect("methods failed");
            for r in results {
                if let Some((_, agg)) = aggs.iter_mut().find(|(m, _)| *m == r.method) {
                    agg.push(r.accuracy);
                }
            }
        }
        let mut row = vec![scenario.to_string()];
        for (_, agg) in &aggs {
            row.push(fmt_acc(agg.mean(), agg.std_error()));
        }
        table.push_row(row);
    }
    table.emit();

    // Sanity line: verify the metrics module agrees with run_methods on one
    // direct evaluation (guards against silent protocol drift).
    let task = family.sample_task(&mut rng);
    let train = task.generate(n, &mut rng);
    let test = task.generate(200, &mut rng);
    let erm = dro_edge::baselines::fit_local_erm(&train, 1e-3).expect("erm");
    let acc = metrics::accuracy(&erm, test.features(), test.labels()).expect("metric");
    println!("spot-check local-erm accuracy on a fresh task: {acc:.3}");
}

/// A "novel" task: mirror a sampled task's parameter (`θ → −θ`) so it sits
/// in a region of parameter space no cloud cluster covers, while keeping
/// the same data mechanism.
fn make_novel_task(
    family: &dre_data::TaskFamily,
    rng: &mut rand::rngs::StdRng,
) -> dre_data::TrueTask {
    let base = family.sample_task(rng);
    let mirrored = dre_linalg::vector::scaled(base.theta(), -1.0);
    dre_data::TrueTask::from_theta(
        mirrored,
        family.config().label_noise,
        family.config().steepness,
    )
    .expect("mirrored parameter is valid")
}
