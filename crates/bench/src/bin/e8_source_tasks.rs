//! E8 — value of cloud history: edge accuracy vs. the number of historical
//! source tasks the cloud has seen.
//!
//! Expected shape: transfer-based methods improve steeply over the first
//! dozens of source tasks (the DP prior sharpens), then saturate; local-only
//! methods are flat by construction.

use dre_bench::{
    concentration_radius, fmt_acc, standard_family, standard_learner_config, Table,
};
use dre_models::metrics;
use dro_edge::evaluate::Aggregate;
use dro_edge::{baselines, CloudKnowledge, EdgeLearner, EdgeLearnerConfig};

fn main() {
    let (family, mut rng) = standard_family(808);
    let trials = 15;
    let n = 20;
    let config = EdgeLearnerConfig {
        epsilon: concentration_radius(0.5, n),
        ..standard_learner_config()
    };

    let mut table = Table::new(
        "E8",
        "edge accuracy vs. cloud history size M (n = 20, 15 trials)",
        &["M", "clusters", "local-erm", "dro+dp"],
    );

    for m in [2usize, 4, 8, 16, 32, 64, 128] {
        let cloud =
            CloudKnowledge::from_family(&family, m, 400, 1.0, &mut rng).expect("cloud");
        let mut erm_agg = Aggregate::default();
        let mut drodp_agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(n, &mut rng);
            let test = task.generate(800, &mut rng);

            let erm = baselines::fit_local_erm(&train, 1e-3).expect("erm");
            erm_agg.push(
                metrics::accuracy(&erm, test.features(), test.labels()).expect("metric"),
            );

            let fit = EdgeLearner::new(config, cloud.prior().clone())
                .expect("config")
                .fit(&train)
                .expect("fit");
            drodp_agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            m.to_string(),
            cloud.discovered_clusters().to_string(),
            fmt_acc(erm_agg.mean(), erm_agg.std_error()),
            fmt_acc(drodp_agg.mean(), drodp_agg.std_error()),
        ]);
    }
    table.emit();
}
