//! E3 — sensitivity to the DP concentration `α`.
//!
//! The cloud refits its prior at each `α`; the table reports how many task
//! clusters the DP discovers and the downstream edge accuracy. Expected
//! shape: cluster count grows with `α`; edge accuracy is flat in a broad
//! middle range (the DP's nonparametric robustness) and only degrades at
//! extreme `α` where the prior fragments.

use dre_bench::{fmt_acc, standard_cloud, standard_family, standard_learner_config, Table};
use dre_models::metrics;
use dro_edge::evaluate::Aggregate;
use dro_edge::EdgeLearner;

fn main() {
    let (family, mut rng) = standard_family(303);
    let config = standard_learner_config();
    let trials = 15;
    let n = 20;

    let mut table = Table::new(
        "E3",
        "cloud DP fit and edge accuracy vs. concentration α (n = 20)",
        &["alpha", "clusters", "prior-K", "dro+dp acc"],
    );

    for alpha in [0.1, 0.5, 1.0, 2.0, 8.0, 32.0] {
        let cloud = standard_cloud(&family, 40, alpha, &mut rng);
        let mut agg = Aggregate::default();
        for _ in 0..trials {
            let task = family.sample_task(&mut rng);
            let train = task.generate(n, &mut rng);
            let test = task.generate(800, &mut rng);
            let learner =
                EdgeLearner::new(config, cloud.prior().clone()).expect("config valid");
            let fit = learner.fit(&train).expect("fit failed");
            agg.push(
                metrics::accuracy(&fit.model, test.features(), test.labels())
                    .expect("metric"),
            );
        }
        table.push_row(vec![
            format!("{alpha:.1}"),
            cloud.discovered_clusters().to_string(),
            cloud.prior().num_components().to_string(),
            fmt_acc(agg.mean(), agg.std_error()),
        ]);
    }
    table.emit();
}
