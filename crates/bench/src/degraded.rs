//! Shared harness for the degraded-mode experiments: a prior-covered
//! device fleet running the real [`EdgeRuntime`] over seeded faulty
//! in-memory links.
//!
//! Both E13 and the `edge_runtime_degraded_rps` bench kernel build on this
//! so the experiment table and the CI tolerance gate measure the *same*
//! scenario: the table sweeps fault intensity and reports the degradation
//! ladder, the kernel times it and fails CI if any accuracy reading sinks
//! below the device's own local-only ERM floor.

use std::sync::Arc;
use std::time::Duration;

use dre_data::{Dataset, TaskFamily};
use dre_models::metrics;
use dre_serve::{
    BreakerConfig, EdgeRuntime, EdgeRuntimeConfig, FaultConfig, FaultInjector, FaultyConnector,
    InMemoryServer, RetryPolicy, ServerState,
};
use dro_edge::{baselines, CloudKnowledge, EdgeLearnerConfig, FitMode};

/// Task id the degraded-fleet scenario registers its prior under.
pub const DEGRADED_TASK_ID: u64 = 13;
/// Ridge strength of the local-only ERM floor baseline.
pub const DEGRADED_ERM_LAMBDA: f64 = 1e-3;

/// One device's fixed few-shot training set, held-out evaluation set, and
/// its local-only ERM floor accuracy on that evaluation set.
pub struct DegradedDevice {
    /// Few-shot training samples the device fits on every round.
    pub train: Dataset,
    /// Held-out evaluation samples.
    pub test: Dataset,
    /// Held-out accuracy of `fit_local_erm` on `train` — the floor.
    pub floor_acc: f64,
}

/// The fixed scenario every degraded-mode run shares: a fitted cloud prior
/// registered on an in-memory server plus per-device datasets.
pub struct DegradedScenario {
    /// Server state holding the registered prior payload.
    pub state: Arc<ServerState>,
    /// The device fleet.
    pub devices: Vec<DegradedDevice>,
}

impl DegradedScenario {
    /// Mean local-only floor accuracy over the fleet.
    pub fn mean_floor(&self) -> f64 {
        self.devices.iter().map(|d| d.floor_acc).sum::<f64>() / self.devices.len() as f64
    }
}

/// Deterministically builds a prior-covered fleet of `num_devices`
/// devices on the workspace-standard task family.
///
/// The experiments measure the *runtime's* degradation ladder, so devices
/// are drawn from tasks the cloud prior actually helps (the paper's
/// transfer setting): sampled tasks where the prior-guided few-shot fit
/// does not clearly beat local ERM are rejected — for those, "fresh beats
/// local" is not a property any runtime could restore.
///
/// # Panics
///
/// Panics if the pipeline fails or a covered fleet cannot be drawn — the
/// construction is deterministic, so that is a programming error, not a
/// flake.
pub fn degraded_scenario(seed: u64, num_devices: usize) -> DegradedScenario {
    let mut rng = dre_prob::seeded_rng(seed);
    let family = TaskFamily::generate(&crate::standard_family_config(), &mut rng)
        .expect("standard config is valid");
    let cloud = CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng)
        .expect("cloud pipeline failed");
    let state = Arc::new(ServerState::new());
    state.register_payload(
        DEGRADED_TASK_ID,
        dro_edge::transfer::serialize_prior(cloud.prior()),
    );

    let mut devices = Vec::with_capacity(num_devices);
    for _ in 0..20 * num_devices {
        if devices.len() == num_devices {
            break;
        }
        let task = family.sample_task(&mut rng);
        let train = task.generate(12, &mut rng);
        let test = task.generate(300, &mut rng);
        let erm = baselines::fit_local_erm(&train, DEGRADED_ERM_LAMBDA).expect("erm fits");
        let floor_acc = metrics::accuracy(&erm, test.features(), test.labels()).expect("eval");
        let fit = dro_edge::EdgeLearner::new(degraded_learner_config(), cloud.prior().clone())
            .expect("valid learner")
            .fit(&train)
            .expect("fit succeeds");
        let dro_acc = metrics::accuracy(&fit.model, test.features(), test.labels()).expect("eval");
        if dro_acc > floor_acc + 0.01 {
            devices.push(DegradedDevice {
                train,
                test,
                floor_acc,
            });
        }
    }
    assert_eq!(
        devices.len(),
        num_devices,
        "could not draw a prior-covered fleet"
    );
    DegradedScenario { state, devices }
}

/// The few-shot learner the degraded fleet runs (cheap enough to fit every
/// round on every device).
pub fn degraded_learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        em_rounds: 3,
        solver_iters: 40,
        multi_start: false,
        ..EdgeLearnerConfig::default()
    }
}

/// Runtime configuration for the degraded fleet: a fast-tripping breaker
/// (threshold 2, 2-step cooldown, so open-breaker short-circuits are
/// visible in per-round traces) and a 2-step stale-prior TTL.
pub fn degraded_runtime_config(device_id: u64) -> EdgeRuntimeConfig {
    EdgeRuntimeConfig {
        task_id: DEGRADED_TASK_ID,
        device_id,
        learner: degraded_learner_config(),
        erm_lambda: DEGRADED_ERM_LAMBDA,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_steps: 2,
            cooldown_jitter: 0,
            seed: 0,
        },
        stale_ttl: 2,
        report_models: true,
        keep_alive: false,
    }
}

/// Tight retry policy so degraded rounds don't stall on backoff sleeps.
pub fn degraded_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(100),
        jitter_seed: 5,
    }
}

/// Mixed drop/corrupt/delay faults at overall intensity `rate ∈ [0, 1]`.
pub fn degraded_faults(rate: f64) -> FaultConfig {
    FaultConfig {
        drop_prob: rate,
        corrupt_prob: rate * 0.5,
        delay_prob: rate * 0.25,
        delay: Duration::from_micros(50),
        ..FaultConfig::default()
    }
}

/// Spawns the fleet: one [`EdgeRuntime`] per device over an in-memory
/// faulty link seeded from `seed` and the device index.
pub fn spawn_degraded_fleet(
    sc: &DegradedScenario,
    rate: f64,
    seed: u64,
) -> Vec<EdgeRuntime<FaultyConnector<InMemoryServer>>> {
    (0..sc.devices.len())
        .map(|dev| {
            let connector = FaultyConnector::new(
                InMemoryServer::with_state(Arc::clone(&sc.state)),
                FaultInjector::new(seed.wrapping_mul(1_000) + dev as u64, degraded_faults(rate)),
            );
            EdgeRuntime::new(connector, degraded_policy(), degraded_runtime_config(dev as u64))
        })
        .collect()
}

/// One accuracy reading: a device's held-out accuracy for one round, with
/// the ladder rung that produced it and the device's own floor.
pub struct DegradedReading {
    /// Device index.
    pub device: usize,
    /// Held-out accuracy of this round's fit.
    pub accuracy: f64,
    /// The degradation rung that served the fit.
    pub mode: FitMode,
    /// The device's local-only floor accuracy.
    pub floor_acc: f64,
}

/// Runs `rounds` fleet rounds, advancing each device's logical fault clock
/// once per round, and returns every per-device per-round reading.
pub fn run_degraded_rounds(
    sc: &DegradedScenario,
    fleet: &mut [EdgeRuntime<FaultyConnector<InMemoryServer>>],
    rounds: usize,
) -> Vec<DegradedReading> {
    let mut readings = Vec::with_capacity(rounds * fleet.len());
    for _ in 0..rounds {
        for (dev, rt) in fleet.iter_mut().enumerate() {
            let data = &sc.devices[dev];
            let fit = rt.fit_step(&data.train).expect("fit never hard-fails");
            let accuracy = metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .expect("eval");
            readings.push(DegradedReading {
                device: dev,
                accuracy,
                mode: fit.mode,
                floor_acc: data.floor_acc,
            });
            rt.connector().advance_step();
        }
    }
    readings
}

/// Counts readings whose accuracy fell below the device's own local-only
/// floor — the ladder's invariant says this is always zero.
pub fn readings_below_floor(readings: &[DegradedReading]) -> usize {
    readings
        .iter()
        .filter(|r| r.accuracy < r.floor_acc - 1e-12)
        .count()
}
