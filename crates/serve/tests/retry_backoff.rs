//! Property tests for [`RetryPolicy::backoff`].
//!
//! For every (base, cap, seed, attempt): the delay lies within
//! `[exponential floor, cap + base]`, the schedule is monotonically
//! non-decreasing while the exponential part is below the cap, and the
//! jitter stream is a pure function of the seed. One golden sequence is
//! pinned so a silent change to the backoff arithmetic or the RNG stream
//! cannot slip through.

use dre_serve::RetryPolicy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The exponential (pre-jitter) part of the schedule, mirrored from the
/// documented contract: `base · 2^(attempt−2)` capped at `max_backoff`.
fn exponential_part(policy: &RetryPolicy, attempt: u32) -> Duration {
    policy
        .base_backoff
        .saturating_mul(1u32 << attempt.saturating_sub(2).min(20))
        .min(policy.max_backoff)
}

#[test]
fn backoff_bounds_monotonicity_and_seed_determinism() {
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    // base 0.1–20 ms, cap 1–64 × base, any seed.
    let cases = (100u64..20_000, 1u32..64, 0u64..u64::MAX);
    runner
        .run(&cases, |(base_us, cap_mult, seed)| {
            let policy = RetryPolicy {
                max_attempts: 12,
                base_backoff: Duration::from_micros(base_us),
                max_backoff: Duration::from_micros(base_us * cap_mult as u64),
                jitter_seed: seed,
            };
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut prev: Option<(Duration, bool)> = None;
            for attempt in 2..=12u32 {
                let d = policy.backoff(attempt, &mut rng_a);
                // Jitter must be deterministic per seed.
                prop_assert_eq!(d, policy.backoff(attempt, &mut rng_b));
                // Bounds: exponential floor ≤ delay ≤ cap + one base of
                // jitter (and at least one full base from attempt 2 on).
                let floor = exponential_part(&policy, attempt);
                prop_assert!(d >= floor, "delay {d:?} under floor {floor:?}");
                prop_assert!(d >= policy.base_backoff);
                prop_assert!(d <= policy.max_backoff + policy.base_backoff);
                // Monotone non-decreasing while the exponential part is
                // still below the cap (after that, jitter may wiggle).
                if let Some((prev_d, prev_capped)) = prev {
                    if !prev_capped {
                        prop_assert!(
                            d >= prev_d,
                            "schedule decreased pre-cap: {prev_d:?} -> {d:?}"
                        );
                    }
                }
                prev = Some((d, floor >= policy.max_backoff));
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn golden_backoff_sequence_is_pinned() {
    // Base 10 ms, cap 160 ms, seed 42: attempts 2–8. The exponential part
    // runs 10, 20, 40, 80, 160, 160, 160 ms; the rest is seeded jitter.
    // These exact values pin both the arithmetic and the RNG stream.
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(160),
        jitter_seed: 42,
    };
    let mut rng = StdRng::seed_from_u64(policy.jitter_seed);
    let got: Vec<u64> = (2..=8)
        .map(|attempt| policy.backoff(attempt, &mut rng).as_micros() as u64)
        .collect();
    assert_eq!(
        got,
        vec![18_143, 23_188, 49_838, 87_011, 167_935, 165_880, 161_253],
        "backoff schedule drifted from the pinned golden sequence"
    );
}
