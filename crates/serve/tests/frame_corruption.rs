//! Property test: no single-byte corruption of a framed prior survives.
//!
//! Random `MixturePrior`s go through the full pipeline — transfer encode →
//! frame encode — and then every byte position of the frame is corrupted in
//! turn. The decoder must reject each corrupted frame (CRC or length
//! check); the uncorrupted frame must round-trip to the original prior.
//! CRC-32 detects all error bursts up to 32 bits, so this holds for *every*
//! position and *every* flip pattern, not just the sampled ones.

use dre_bayes::MixturePrior;
use dre_linalg::Matrix;
use dre_serve::frame::{self, Message};
use dre_serve::ServeError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A valid random prior: positive weights, bounded means, SPD covariances.
fn random_prior(k: usize, d: usize, seed: u64) -> MixturePrior {
    let mut rng = StdRng::seed_from_u64(seed);
    let components = (0..k)
        .map(|_| {
            let weight = rng.gen_range(0.1..1.0);
            let mean: Vec<f64> = (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let mut cov = Matrix::identity(d);
            cov.add_diag(rng.gen_range(0.1..3.0));
            (weight, mean, cov)
        })
        .collect();
    MixturePrior::new(components).expect("construction above is always valid")
}

#[test]
fn every_single_byte_corruption_is_caught() {
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let cases = (1usize..4, 1usize..6, 0u64..1_000_000, 1u64..256);
    runner
        .run(&cases, |(k, d, seed, flip)| {
            let prior = random_prior(k, d, seed);
            let payload = dro_edge::transfer::serialize_prior(&prior);
            let framed = frame::encode(&Message::PriorResponse {
                payload: payload.clone(),
            });
            prop_assert_eq!(framed.len(), frame::prior_response_frame_len(k, d));

            // The clean frame round-trips to the original prior.
            match frame::decode(&framed) {
                Ok(Message::PriorResponse { payload: back }) => {
                    prop_assert_eq!(&back, &payload);
                    let decoded = dro_edge::transfer::deserialize_prior(&back)
                        .expect("clean payload must decode");
                    prop_assert_eq!(decoded.num_components(), k);
                    prop_assert_eq!(decoded.dim(), d);
                }
                other => return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "clean frame failed to decode: {other:?}"
                ))),
            }

            // Corrupting any single byte (by a case-chosen XOR pattern)
            // must be caught by the length check or the CRC.
            let flip = flip as u8; // 1..=255: always changes the byte
            for pos in 0..framed.len() {
                let mut corrupted = framed.clone();
                corrupted[pos] ^= flip;
                match frame::decode(&corrupted) {
                    // Only the CRC and length checks may fire — never a
                    // VersionMismatch (the CRC runs first) and never a
                    // silently accepted frame.
                    Err(ServeError::ChecksumMismatch { .. })
                    | Err(ServeError::MalformedFrame { .. }) => {}
                    Ok(msg) => {
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "byte {pos} xor {flip:#04x} slipped through as {}",
                            msg.kind_name()
                        )))
                    }
                    Err(other) => {
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "byte {pos} xor {flip:#04x}: unexpected error class {other}"
                        )))
                    }
                }
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn control_plane_kinds_round_trip_and_reject_every_single_byte_corruption() {
    // The load-shedding, health, and shard-routing kinds (5 Busy, 6 Health,
    // 7 HealthReport, 8 ShardMapRequest, 9 ShardMapResponse) get the same
    // guarantee as the data plane: clean frames round-trip, and any
    // single-byte corruption is caught by the length check or CRC.
    let messages = [
        Message::Busy { retry_after_ms: 25 },
        Message::Health,
        Message::HealthReport(dre_serve::HealthStatus {
            queue_depth: 3,
            in_flight: 2,
            shed_connections: 41,
            worker_panics: 1,
        }),
        Message::ShardMapRequest,
        Message::ShardMapResponse {
            map: dre_serve::ShardMapWire {
                epoch: 12,
                seed: 7_400,
                replication: 2,
                virtual_nodes: 64,
                shards: vec![
                    "127.0.0.1:9001".parse().unwrap(),
                    "10.1.2.3:9002".parse().unwrap(),
                    "[::1]:9003".parse().unwrap(),
                ],
            },
        },
    ];
    for msg in &messages {
        let framed = frame::encode(msg);
        match (msg, frame::decode(&framed).expect("clean frame decodes")) {
            (Message::Busy { retry_after_ms }, Message::Busy { retry_after_ms: back }) => {
                assert_eq!(*retry_after_ms, back)
            }
            (Message::Health, Message::Health) => {}
            (Message::HealthReport(h), Message::HealthReport(back)) => assert_eq!(*h, back),
            (Message::ShardMapRequest, Message::ShardMapRequest) => {}
            (Message::ShardMapResponse { map }, Message::ShardMapResponse { map: back }) => {
                assert_eq!(*map, back)
            }
            (_, other) => panic!("{} decoded as {}", msg.kind_name(), other.kind_name()),
        }
        for pos in 0..framed.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupted = framed.clone();
                corrupted[pos] ^= flip;
                match frame::decode(&corrupted) {
                    Err(ServeError::ChecksumMismatch { .. })
                    | Err(ServeError::MalformedFrame { .. }) => {}
                    Ok(m) => panic!(
                        "{}: byte {pos} xor {flip:#04x} slipped through as {}",
                        msg.kind_name(),
                        m.kind_name()
                    ),
                    Err(other) => panic!(
                        "{}: byte {pos} xor {flip:#04x}: unexpected error class {other}",
                        msg.kind_name()
                    ),
                }
            }
        }
    }
}

#[test]
fn shard_map_version_skew_stays_fatal_but_crc_corruption_stays_retryable() {
    let framed = frame::encode(&Message::ShardMapResponse {
        map: dre_serve::ShardMapWire {
            epoch: 3,
            seed: 99,
            replication: 1,
            virtual_nodes: 16,
            shards: vec!["127.0.0.1:9001".parse().unwrap()],
        },
    });
    // A flipped version byte without a matching CRC is corruption in
    // transit: retryable, never a fatal VersionMismatch.
    let mut corrupted = framed.clone();
    corrupted[4] ^= 0x01;
    let err = frame::decode(&corrupted).unwrap_err();
    assert!(matches!(err, ServeError::ChecksumMismatch { .. }), "{err}");
    assert!(err.is_retryable());
    // Genuine skew — version byte rewritten *and* CRC recomputed — is a
    // real protocol disagreement: fatal.
    let mut v2 = framed.clone();
    v2[4] = 2;
    let crc = dre_serve::Crc32::new()
        .update(&v2[4..6])
        .update(&v2[10..])
        .finalize();
    v2[6..10].copy_from_slice(&crc.to_le_bytes());
    let err = frame::decode(&v2).unwrap_err();
    assert!(matches!(err, ServeError::VersionMismatch { .. }), "{err}");
    assert!(!err.is_retryable());
}

#[test]
fn corrupted_version_byte_is_retryable_not_fatal() {
    // The one subtle spot in the taxonomy: byte 4 is the version byte. A
    // bit flip there must read as retryable corruption (the CRC no longer
    // matches), never as a fatal VersionMismatch.
    let prior = random_prior(2, 3, 7);
    let payload = dro_edge::transfer::serialize_prior(&prior);
    let framed = frame::encode(&Message::PriorResponse { payload });
    for flip in 1..=255u8 {
        let mut corrupted = framed.clone();
        corrupted[4] ^= flip;
        let err = frame::decode(&corrupted).unwrap_err();
        assert!(
            matches!(err, ServeError::ChecksumMismatch { .. }),
            "version-byte flip {flip:#04x} gave {err}"
        );
        assert!(err.is_retryable());
    }
}

/// A valid random report: finite params, nonzero identity fields.
fn random_report(p: usize, seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    Message::ModelReport {
        task_id: rng.gen_range(0..1_000_000),
        device_id: rng.gen_range(0..u64::MAX),
        seq: rng.gen_range(1..u64::MAX),
        params: (0..p).map(|_| rng.gen_range(-100.0..100.0)).collect(),
    }
}

#[test]
fn report_plane_kinds_reject_every_single_byte_corruption() {
    // The report path (3 ModelReport with its widened device_id + seq
    // header, 10 ReportAck in both accept states) gets the same guarantee
    // as the prior path: clean frames round-trip field-for-field, and any
    // single-byte corruption is caught by the length check or CRC.
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let cases = (1usize..8, 0u64..1_000_000, 1u64..256);
    runner
        .run(&cases, |(p, seed, flip)| {
            let msg = random_report(p, seed);
            let framed = frame::encode(&msg);
            prop_assert_eq!(framed.len(), frame::model_report_frame_len(p));

            match (frame::decode(&framed), &msg) {
                (
                    Ok(Message::ModelReport {
                        task_id,
                        device_id,
                        seq,
                        params,
                    }),
                    Message::ModelReport {
                        task_id: t,
                        device_id: d,
                        seq: s,
                        params: pp,
                    },
                ) => {
                    prop_assert_eq!(task_id, *t);
                    prop_assert_eq!(device_id, *d);
                    prop_assert_eq!(seq, *s);
                    prop_assert_eq!(&params, pp);
                }
                (other, _) => {
                    return Err(proptest::test_runner::TestCaseError::fail(format!(
                        "clean report failed to decode: {other:?}"
                    )))
                }
            }

            let flip = flip as u8;
            for pos in 0..framed.len() {
                let mut corrupted = framed.clone();
                corrupted[pos] ^= flip;
                match frame::decode(&corrupted) {
                    Err(ServeError::ChecksumMismatch { .. })
                    | Err(ServeError::MalformedFrame { .. }) => {}
                    Ok(m) => {
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "report byte {pos} xor {flip:#04x} slipped through as {}",
                            m.kind_name()
                        )))
                    }
                    Err(other) => {
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "report byte {pos} xor {flip:#04x}: unexpected error class {other}"
                        )))
                    }
                }
            }
            Ok(())
        })
        .unwrap();

    for accepted in [true, false] {
        let framed = frame::encode(&Message::ReportAck { accepted });
        assert_eq!(framed.len(), frame::report_ack_frame_len());
        match frame::decode(&framed) {
            Ok(Message::ReportAck { accepted: back }) => assert_eq!(accepted, back),
            other => panic!("clean ack failed to decode: {other:?}"),
        }
        for pos in 0..framed.len() {
            for flip in 1..=255u8 {
                let mut corrupted = framed.clone();
                corrupted[pos] ^= flip;
                match frame::decode(&corrupted) {
                    Err(ServeError::ChecksumMismatch { .. })
                    | Err(ServeError::MalformedFrame { .. }) => {}
                    Ok(m) => panic!(
                        "ack byte {pos} xor {flip:#04x} slipped through as {}",
                        m.kind_name()
                    ),
                    Err(other) => panic!(
                        "ack byte {pos} xor {flip:#04x}: unexpected error class {other}"
                    ),
                }
            }
        }
    }
}

#[test]
fn report_version_skew_stays_fatal_but_crc_corruption_stays_retryable() {
    // Same taxonomy as the shard-map frames, on both report-plane kinds: a
    // flipped version byte without a matching CRC is transit corruption
    // (retryable); a rewritten version *with* a recomputed CRC is genuine
    // protocol skew (fatal).
    let report = frame::encode(&random_report(3, 41));
    let ack = frame::encode(&Message::ReportAck { accepted: true });
    for framed in [report, ack] {
        let mut corrupted = framed.clone();
        corrupted[4] ^= 0x01;
        let err = frame::decode(&corrupted).unwrap_err();
        assert!(matches!(err, ServeError::ChecksumMismatch { .. }), "{err}");
        assert!(err.is_retryable());

        let mut v2 = framed.clone();
        v2[4] = 2;
        let crc = dre_serve::Crc32::new()
            .update(&v2[4..6])
            .update(&v2[10..])
            .finalize();
        v2[6..10].copy_from_slice(&crc.to_le_bytes());
        let err = frame::decode(&v2).unwrap_err();
        assert!(matches!(err, ServeError::VersionMismatch { .. }), "{err}");
        assert!(!err.is_retryable());
    }
}
