//! Property test: the server's pre-encoded response cache is honest.
//!
//! The zero-copy hot path serves `PriorResponse` frames that were encoded
//! once at `register_*` time, so this suite proves — over the same (k, d)
//! grid the corruption tests use — that a cached frame is byte-identical
//! to a fresh `frame::encode` of the same payload, that the direct
//! `encode_prior_response` framing matches the generic encoder, and that
//! the borrowing decode path (`decode_ref`) agrees with the owned one.

use std::sync::Arc;

use dre_bayes::MixturePrior;
use dre_linalg::Matrix;
use dre_serve::frame::{self, Message, MessageRef};
use dre_serve::ServerState;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A valid random prior: positive weights, bounded means, SPD covariances.
fn random_prior(k: usize, d: usize, seed: u64) -> MixturePrior {
    let mut rng = StdRng::seed_from_u64(seed);
    let components = (0..k)
        .map(|_| {
            let weight = rng.gen_range(0.1..1.0);
            let mean: Vec<f64> = (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let mut cov = Matrix::identity(d);
            cov.add_diag(rng.gen_range(0.1..3.0));
            (weight, mean, cov)
        })
        .collect();
    MixturePrior::new(components).expect("construction above is always valid")
}

#[test]
fn cached_frames_are_byte_identical_to_fresh_encodes() {
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    // Same (k, d) grid as tests/frame_corruption.rs.
    let cases = (1usize..4, 1usize..6, 0u64..1_000_000);
    runner
        .run(&cases, |(k, d, seed)| {
            let prior = random_prior(k, d, seed);
            let payload = dro_edge::transfer::serialize_prior(&prior);

            // Register through the real server path; the cache builds the
            // frame once, at registration time.
            let state = Arc::new(ServerState::new());
            state.register_prior(42, &prior);
            let entry = state.prior_entry(42).expect("registered task is cached");

            // The cached frame matches a fresh encode, bit for bit.
            let fresh = frame::encode(&Message::PriorResponse {
                payload: payload.clone(),
            });
            prop_assert_eq!(&entry.frame[..], &fresh[..]);
            prop_assert_eq!(&entry.payload[..], &payload[..]);
            prop_assert_eq!(fresh.len(), frame::prior_response_frame_len(k, d));

            // The direct framing helper agrees with the generic encoder.
            prop_assert_eq!(&frame::encode_prior_response(&payload)[..], &fresh[..]);

            // What respond_bytes hands the worker loop is that same frame.
            let request = frame::encode(&Message::PriorRequest { task_id: 42 });
            let reply = state.respond_bytes(&request);
            prop_assert!(reply.is_cached());
            prop_assert_eq!(&reply[..], &fresh[..]);

            // Borrowing and owned decodes agree on the cached bytes.
            match frame::decode_ref(&entry.frame).expect("cached frame decodes") {
                MessageRef::PriorResponse { payload: slice } => {
                    prop_assert_eq!(slice, &payload[..]);
                }
                other => {
                    return Err(proptest::test_runner::TestCaseError::fail(format!(
                        "cached frame decoded as {}",
                        other.kind_name()
                    )))
                }
            }
            let owned = frame::decode(&entry.frame).expect("cached frame decodes");
            prop_assert_eq!(owned, Message::PriorResponse { payload });
            Ok(())
        })
        .unwrap();
}

#[test]
fn reregistration_bumps_the_generation_and_swaps_the_frame() {
    let state = ServerState::new();
    let a = random_prior(2, 3, 1);
    let b = random_prior(3, 4, 2);
    state.register_prior(7, &a);
    let first = state.prior_entry(7).unwrap();
    assert_eq!(first.generation, state.cache_generation());
    state.register_prior(7, &b);
    let second = state.prior_entry(7).unwrap();
    assert!(second.generation > first.generation);
    assert_ne!(&second.frame[..], &first.frame[..]);
    assert_eq!(
        &second.frame[..],
        &frame::encode_prior_response(&dro_edge::transfer::serialize_prior(&b))[..]
    );
}
