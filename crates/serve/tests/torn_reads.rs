//! Torn-read safety under concurrent re-registration.
//!
//! A writer re-registers the same task's prior in a tight loop while
//! keep-alive readers hammer the lock-free read path over real TCP. The
//! snapshot-publication design must make every observed frame atomic:
//! each reply decodes cleanly (the client's CRC check rejects torn
//! bytes), its payload is byte-identical to the fresh encode of SOME
//! published generation — never a splice of two — and the generations a
//! single keep-alive stream observes are monotone, because a worker's
//! [`dre_serve::PriorView`] only ever moves forward.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dre_serve::{PriorClient, PriorServer, RetryPolicy, ServeConfig, TcpConnector};

const TASK: u64 = 7;
const READERS: usize = 4;
const GENERATIONS: u64 = 300;

/// Deterministic payload for one generation: length and bytes both vary
/// with the generation, so any splice of two generations is detectable.
fn payload_for(generation: u64) -> Vec<u8> {
    let len = 64 + ((generation * 37) % 509) as usize;
    (0..len)
        .map(|i| {
            (generation
                .wrapping_mul(2_654_435_761)
                .wrapping_add(i as u64 * 97)
                % 251) as u8
        })
        .collect()
}

#[test]
fn concurrent_reregistration_never_tears_a_frame() {
    let config = ServeConfig {
        workers: 2,
        read_timeout: Some(Duration::from_secs(10)),
        write_timeout: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    };
    let mut handle = PriorServer::bind("127.0.0.1:0", config).unwrap();
    handle.state().register_payload(TASK, payload_for(1));

    // Every payload any reader may legally observe, keyed back to its
    // generation.
    let legal: Arc<HashMap<Vec<u8>, u64>> = Arc::new(
        (1..=GENERATIONS)
            .map(|g| (payload_for(g), g))
            .collect(),
    );

    let done = Arc::new(AtomicBool::new(false));
    let addr = handle.addr();
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let legal = Arc::clone(&legal);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client =
                    PriorClient::new(TcpConnector::new(addr), RetryPolicy::default())
                        .keep_alive(true);
                let mut buf = Vec::new();
                let mut last_generation = 0u64;
                let mut observed = 0u64;
                while !done.load(Ordering::SeqCst) {
                    client
                        .fetch_prior_payload_into(TASK, &mut buf)
                        .expect("reads must never fail during re-registration");
                    let generation = *legal
                        .get(&buf)
                        .expect("observed a payload no generation ever published");
                    assert!(
                        generation >= last_generation,
                        "one keep-alive stream observed generation {generation} \
                         after {last_generation}"
                    );
                    last_generation = generation;
                    observed += 1;
                }
                // The writer finished before `done` was set, so the next
                // fetch must observe the final generation.
                client.fetch_prior_payload_into(TASK, &mut buf).unwrap();
                assert_eq!(legal[&buf], GENERATIONS, "final read must be current");
                observed
            })
        })
        .collect();

    for g in 2..=GENERATIONS {
        handle.state().register_payload(TASK, payload_for(g));
    }
    done.store(true, Ordering::SeqCst);

    let mut total_reads = 0;
    for reader in readers {
        total_reads += reader.join().expect("reader panicked");
    }
    assert!(total_reads > 0);

    let m = handle.metrics();
    // No torn frame ever reached the wire: nothing failed a checksum, no
    // request errored, and every prior request was a cache hit.
    assert_eq!(m.checksum_failures, 0);
    assert_eq!(m.errors, 0);
    assert!(m.prior_cache_hits >= total_reads);
    assert_eq!(m.snapshot_publishes, GENERATIONS);
    // Each published generation paid its frame encode exactly once.
    assert_eq!(m.prior_cache_builds, GENERATIONS);
    handle.shutdown();
}
