//! The edge-side client: bounded retries with deterministic backoff.
//!
//! By default every request opens a fresh connection through a
//! [`Connector`], so a retry never reuses a stream that just failed
//! mid-frame. In keep-alive mode ([`PriorClient::keep_alive`]) the client
//! holds one live stream and reuses it across requests; a stream is only
//! kept after a cleanly framed reply, so a reuse that fails mid-frame
//! simply costs one retry attempt and falls back to a fresh connect —
//! reconnection is folded into the existing retry taxonomy, not a new
//! failure mode. Reusable read/write scratch buffers make the steady-state
//! keep-alive request allocation-free. Only errors the taxonomy marks
//! retryable ([`ServeError::is_retryable`]) consume retry budget; fatal
//! errors surface immediately. Backoff is exponential with seeded jitter —
//! two clients built with the same seed sleep the same schedule, which
//! keeps the fault-injection tests reproducible.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dre_bayes::MixturePrior;

use crate::frame::{
    self, ErrorCode, HealthStatus, Message, MessageRef, ShardMapWire, DEFAULT_MAX_FRAME_LEN,
};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::transport::{Connector, Transport};
use crate::{Result, ServeError};

/// Bounded-retry policy with deterministic exponential backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (same seed, same sleeps).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sleep before attempt number `attempt` (2-based: the first retry):
    /// `base · 2^(attempt-2)` capped at `max_backoff`, plus up to one
    /// extra `base` of seeded jitter.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let doublings = attempt.saturating_sub(2).min(20);
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let jitter = self.base_backoff.mul_f64(rng.gen_range(0.0..1.0));
        exp + jitter
    }
}

/// Edge-side client for the prior-transfer protocol, generic over how
/// connections are made (real TCP or the faulty test transport).
pub struct PriorClient<C: Connector> {
    connector: C,
    policy: RetryPolicy,
    jitter: StdRng,
    max_frame_len: usize,
    metrics: ServeMetrics,
    keep_alive: bool,
    /// The live stream in keep-alive mode; `None` after any failure, so
    /// the next attempt reconnects fresh.
    stream: Option<C::Transport>,
    /// Reusable request-encode buffer.
    write_buf: Vec<u8>,
    /// Reusable reply-body buffer.
    read_buf: Vec<u8>,
}

impl<C: Connector> PriorClient<C> {
    /// A client over `connector` with the given retry policy (fresh
    /// connection per attempt; see [`PriorClient::keep_alive`]).
    pub fn new(connector: C, policy: RetryPolicy) -> Self {
        let jitter = StdRng::seed_from_u64(policy.jitter_seed);
        PriorClient {
            connector,
            policy,
            jitter,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            metrics: ServeMetrics::new(),
            keep_alive: false,
            stream: None,
            write_buf: Vec::new(),
            read_buf: Vec::new(),
        }
    }

    /// Enables (or disables) keep-alive mode: the client holds one live
    /// stream and reuses it across requests, reconnecting transparently —
    /// at the cost of one retry attempt — when a reuse fails (server
    /// restart, per-connection request cap, dropped link). Reused requests
    /// are counted in [`ServeMetrics::reused_connections`].
    pub fn keep_alive(mut self, enabled: bool) -> Self {
        self.keep_alive = enabled;
        if !enabled {
            self.stream = None;
        }
        self
    }

    /// Whether keep-alive mode is on.
    pub fn is_keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Whether a live keep-alive stream is currently held.
    pub fn has_live_stream(&self) -> bool {
        self.stream.is_some()
    }

    /// Drops the held keep-alive stream (if any); the next request
    /// reconnects fresh.
    pub fn close(&mut self) {
        self.stream = None;
    }

    /// The connector, for inspection (e.g. fault counters in tests).
    pub fn connector(&self) -> &C {
        &self.connector
    }

    /// Point-in-time client metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Liveness probe: sends `Ping`, expects `Ping` back.
    pub fn ping(&mut self) -> Result<()> {
        self.exchange(&Message::Ping, None).map(drop)
    }

    /// Fetches the server's load and resilience gauges.
    pub fn health(&mut self) -> Result<HealthStatus> {
        match self.exchange(&Message::Health, None)? {
            Message::HealthReport(status) => Ok(status),
            other => Err(ServeError::UnexpectedMessage {
                got: other.kind_name(),
                expected: "HealthReport",
            }),
        }
    }

    /// Fetches the raw transfer payload registered for `task_id`.
    pub fn fetch_prior_payload(&mut self, task_id: u64) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.fetch_prior_payload_into(task_id, &mut out)?;
        Ok(out)
    }

    /// Fetches the raw transfer payload registered for `task_id` into a
    /// caller-owned buffer (cleared first). With keep-alive on and a
    /// reused `out`, the steady-state fetch makes zero heap allocations:
    /// the request encodes into a scratch buffer, the reply body lands in
    /// another, and the payload is copied straight into `out`.
    pub fn fetch_prior_payload_into(&mut self, task_id: u64, out: &mut Vec<u8>) -> Result<()> {
        match self.exchange(&Message::PriorRequest { task_id }, Some(out))? {
            Message::PriorResponse { .. } => Ok(()),
            other => Err(ServeError::UnexpectedMessage {
                got: other.kind_name(),
                expected: "PriorResponse",
            }),
        }
    }

    /// Fetches and decodes the prior registered for `task_id`.
    pub fn fetch_prior(&mut self, task_id: u64) -> Result<MixturePrior> {
        let payload = self.fetch_prior_payload(task_id)?;
        dro_edge::transfer::deserialize_prior(&payload).map_err(ServeError::Payload)
    }

    /// Reports a locally fitted packed model under this device's identity
    /// and monotone sequence number; the server acknowledges with a
    /// [`Message::ReportAck`]. Returns whether the report was accepted
    /// into the inbox — `Ok(false)` means the server dropped it before
    /// the inbox (replay, rate cap, or overflow shed), which is counted
    /// in [`ServeMetrics::reports_rejected`] but is *not* an error: the
    /// report leg stayed healthy, the payload just didn't land.
    pub fn report_model(
        &mut self,
        task_id: u64,
        device_id: u64,
        seq: u64,
        params: Vec<f64>,
    ) -> Result<bool> {
        let request = Message::ModelReport {
            task_id,
            device_id,
            seq,
            params,
        };
        match self.exchange(&request, None)? {
            Message::ReportAck { accepted } => {
                if !accepted {
                    self.metrics
                        .reports_rejected
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Ok(accepted)
            }
            other => Err(ServeError::UnexpectedMessage {
                got: other.kind_name(),
                expected: "ReportAck",
            }),
        }
    }

    /// Fetches the epoch-stamped shard map from the connected server —
    /// only shards that are part of a [`crate::shard::ShardedPriorPlane`]
    /// answer this.
    pub fn fetch_shard_map(&mut self) -> Result<ShardMapWire> {
        match self.exchange(&Message::ShardMapRequest, None)? {
            Message::ShardMapResponse { map } => Ok(map),
            other => Err(ServeError::UnexpectedMessage {
                got: other.kind_name(),
                expected: "ShardMapResponse",
            }),
        }
    }

    /// One request/response exchange under the retry policy. A protocol
    /// `Error` reply is surfaced as [`ServeError::Remote`] (fatal); a
    /// `Busy` reply is retryable, and its retry-after hint (capped at the
    /// policy's `max_backoff`) raises the next sleep when it exceeds the
    /// scheduled backoff.
    fn exchange(
        &mut self,
        request: &Message,
        mut prior_out: Option<&mut Vec<u8>>,
    ) -> Result<Message> {
        self.metrics
            .requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let started = Instant::now();
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<ServeError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.metrics
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let hint = last
                    .as_ref()
                    .and_then(ServeError::retry_after)
                    .unwrap_or(Duration::ZERO)
                    .min(self.policy.max_backoff);
                std::thread::sleep(self.policy.backoff(attempt, &mut self.jitter).max(hint));
            }
            match self.attempt(request, prior_out.as_deref_mut()) {
                Ok(reply) => {
                    self.metrics
                        .responses_ok
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.metrics.latency.record(started.elapsed());
                    return Ok(reply);
                }
                Err(e) => {
                    if matches!(e, ServeError::ChecksumMismatch { .. }) {
                        self.metrics
                            .checksum_failures
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    if !e.is_retryable() {
                        self.metrics
                            .errors
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Err(e);
                    }
                    // A misroute redirect arrived on an intact stream, but
                    // retrying it against the same shard would redirect
                    // forever — drop the stream so the connector re-routes.
                    if matches!(e, ServeError::Misrouted { .. }) {
                        self.stream = None;
                    }
                    self.connector.note_retryable_error(&e);
                    last = Some(e);
                }
            }
        }
        self.metrics
            .errors
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Err(ServeError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// One attempt: one frame out, one frame in — over the held keep-alive
    /// stream when there is one, otherwise over a fresh connection. The
    /// stream is put back only after a cleanly framed reply; any mid-frame
    /// failure drops it, so the next attempt reconnects. With
    /// `prior_out`, a `PriorResponse` payload is copied straight into the
    /// caller's buffer instead of allocating.
    fn attempt(&mut self, request: &Message, prior_out: Option<&mut Vec<u8>>) -> Result<Message> {
        let mut transport = match self.stream.take() {
            Some(t) => {
                self.metrics
                    .reused_connections
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                t
            }
            None => {
                let t = self.connector.connect()?;
                self.metrics
                    .connections
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                t
            }
        };
        frame::encode_into(request, &mut self.write_buf);
        transport.send(&self.write_buf)?;
        self.metrics
            .bytes_out
            .fetch_add(self.write_buf.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let received = frame::read_frame_into(&mut transport, self.max_frame_len, &mut self.read_buf)?;
        self.metrics
            .bytes_in
            .fetch_add(received as u64, std::sync::atomic::Ordering::Relaxed);
        // A complete frame came back, so the stream's framing is intact —
        // it is safe to reuse even if the body below fails to parse.
        if self.keep_alive {
            self.stream = Some(transport);
        }
        match frame::decode_body_ref(&self.read_buf[frame::LEN_PREFIX..])? {
            // A misroute is a redirect, not a failure: retryable, so the
            // routing connector gets a chance to re-aim the next attempt.
            MessageRef::Error {
                code: ErrorCode::Misrouted,
                detail,
            } => Err(ServeError::Misrouted {
                task_id: match request {
                    Message::PriorRequest { task_id } => *task_id,
                    _ => 0,
                },
                detail: detail.to_string(),
            }),
            MessageRef::Error { code, detail } => Err(ServeError::Remote {
                code,
                detail: detail.to_string(),
            }),
            MessageRef::Busy { retry_after_ms } => {
                self.metrics
                    .busy
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(ServeError::Busy {
                    retry_after: Duration::from_millis(retry_after_ms as u64),
                })
            }
            MessageRef::PriorResponse { payload } => match prior_out {
                Some(out) => {
                    out.clear();
                    out.extend_from_slice(payload);
                    // The payload lives in the caller's buffer; the empty
                    // placeholder allocates nothing.
                    Ok(Message::PriorResponse {
                        payload: Vec::new(),
                    })
                }
                None => Ok(Message::PriorResponse {
                    payload: payload.to_vec(),
                }),
            },
            other => Ok(other.to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{InMemoryServer, ServerState};
    use crate::transport::{FaultConfig, FaultInjector, FaultyConnector};
    use std::sync::Arc;

    fn faulty_client(
        state: Arc<ServerState>,
        config: FaultConfig,
        seed: u64,
        policy: RetryPolicy,
    ) -> PriorClient<FaultyConnector<InMemoryServer>> {
        let responder = InMemoryServer::with_state(state);
        let injector = FaultInjector::new(seed, config);
        PriorClient::new(FaultyConnector::new(responder, injector), policy)
    }

    #[test]
    fn clean_link_needs_one_attempt() {
        let state = Arc::new(ServerState::new());
        state.register_payload(3, vec![0xAA; 16]);
        let mut client = faulty_client(
            Arc::clone(&state),
            FaultConfig::default(),
            0,
            RetryPolicy::default(),
        );
        client.ping().unwrap();
        assert_eq!(client.fetch_prior_payload(3).unwrap(), vec![0xAA; 16]);
        assert!(client.report_model(3, 1, 1, vec![1.0, 2.0]).unwrap());
        let m = client.metrics();
        assert_eq!(m.requests, 3);
        assert_eq!(m.responses_ok, 3);
        assert_eq!(m.retries, 0);
        assert_eq!(m.errors, 0);
        assert_eq!(m.reports_rejected, 0);
        assert_eq!(state.take_reports().len(), 1);

        // A replayed sequence number comes back rejected — visible to the
        // device, still not an error.
        assert!(!client.report_model(3, 1, 1, vec![1.0, 2.0]).unwrap());
        let m = client.metrics();
        assert_eq!(m.errors, 0);
        assert_eq!(m.reports_rejected, 1);
    }

    #[test]
    fn unknown_task_is_fatal_not_retried() {
        let state = Arc::new(ServerState::new());
        let mut client = faulty_client(
            state,
            FaultConfig::default(),
            0,
            RetryPolicy::default(),
        );
        let err = client.fetch_prior_payload(404).unwrap_err();
        assert!(matches!(err, ServeError::Remote { .. }));
        let m = client.metrics();
        assert_eq!(m.retries, 0, "Remote errors must not consume retries");
        assert_eq!(m.errors, 1);
    }

    #[test]
    fn retry_budget_exhaustion_wraps_the_last_error() {
        let state = Arc::new(ServerState::new());
        state.register_payload(1, vec![1]);
        let config = FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let mut client = faulty_client(state, config, 0, policy);
        let err = client.fetch_prior_payload(1).unwrap_err();
        match err {
            ServeError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, ServeError::InjectedFault { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert_eq!(client.metrics().retries, 2);
    }

    #[test]
    fn keep_alive_reuses_one_stream_and_allocates_nothing_per_fetch() {
        let state = Arc::new(ServerState::new());
        state.register_payload(9, vec![0x5A; 64]);
        let mut client = faulty_client(
            Arc::clone(&state),
            FaultConfig::default(),
            0,
            RetryPolicy::default(),
        )
        .keep_alive(true);
        assert!(client.is_keep_alive());

        let mut out = Vec::new();
        for _ in 0..5 {
            client.fetch_prior_payload_into(9, &mut out).unwrap();
            assert_eq!(out, vec![0x5A; 64]);
        }
        assert!(client.has_live_stream());
        let m = client.metrics();
        assert_eq!(m.connections, 1, "one connect, then pure reuse");
        assert_eq!(m.reused_connections, 4);
        assert_eq!(m.requests, 5);
        assert_eq!(m.responses_ok, 5);
        // Every hit on the server came straight from the frame cache.
        let s = state.metrics();
        assert_eq!(s.prior_cache_hits, 5);
        assert_eq!(s.prior_cache_builds, 1);

        // close() drops the stream; the next request reconnects.
        client.close();
        assert!(!client.has_live_stream());
        client.fetch_prior_payload_into(9, &mut out).unwrap();
        assert_eq!(client.metrics().connections, 2);
    }

    #[test]
    fn failed_reuse_costs_one_retry_and_reconnects_fresh() {
        let state = Arc::new(ServerState::new());
        state.register_payload(1, vec![7; 8]);
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let mut client = faulty_client(
            Arc::clone(&state),
            FaultConfig::default(),
            0,
            policy,
        )
        .keep_alive(true);

        client.fetch_prior_payload(1).unwrap();
        assert!(client.has_live_stream());

        // Partition the link: the reused stream fails mid-exchange, is
        // dropped, and the one retry fresh-connects into the same
        // partition — the whole request fails, but through the ordinary
        // retry taxonomy.
        client.connector().partition_until(1);
        let err = client.fetch_prior_payload(1).unwrap_err();
        assert!(matches!(err, ServeError::RetriesExhausted { .. }));
        assert!(
            !client.has_live_stream(),
            "a stream that failed mid-frame must not be reused"
        );
        let m = client.metrics();
        assert_eq!(m.reused_connections, 1, "the failed reuse was attempt 1");
        assert_eq!(m.connections, 2, "initial connect + the retry's reconnect");
        assert_eq!(m.retries, 1);

        // Heal the partition: the next request reconnects and succeeds.
        client.connector().advance_step();
        assert_eq!(client.fetch_prior_payload(1).unwrap(), vec![7; 8]);
        assert!(client.has_live_stream());
        assert_eq!(client.metrics().connections, 3);
    }

    #[test]
    fn fresh_mode_never_holds_a_stream() {
        let state = Arc::new(ServerState::new());
        state.register_payload(2, vec![1]);
        let mut client = faulty_client(
            state,
            FaultConfig::default(),
            0,
            RetryPolicy::default(),
        );
        for _ in 0..3 {
            client.fetch_prior_payload(2).unwrap();
            assert!(!client.has_live_stream());
        }
        let m = client.metrics();
        assert_eq!(m.connections, 3);
        assert_eq!(m.reused_connections, 0);
    }

    #[test]
    fn backoff_is_capped_exponential_and_seeded() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
            jitter_seed: 7,
        };
        let mut a = StdRng::seed_from_u64(policy.jitter_seed);
        let mut b = StdRng::seed_from_u64(policy.jitter_seed);
        for attempt in 2..=8 {
            let d1 = policy.backoff(attempt, &mut a);
            let d2 = policy.backoff(attempt, &mut b);
            assert_eq!(d1, d2, "same seed, same schedule");
            // Exponential part is capped; jitter adds at most one base.
            assert!(d1 <= policy.max_backoff + policy.base_backoff);
            let floor = policy
                .base_backoff
                .saturating_mul(1 << (attempt - 2).min(20))
                .min(policy.max_backoff);
            assert!(d1 >= floor);
        }
    }
}
