//! The fault-tolerant edge runtime: fetch → fit → report with graceful
//! degradation.
//!
//! [`EdgeRuntime`] wraps a [`PriorClient`] behind a [`CircuitBreaker`] and
//! a [`StalePriorCache`] and walks the degradation ladder on every fit
//! step:
//!
//! 1. **FreshPrior** — breaker permitting, fetch the prior and run the
//!    full DRO+DP-prior pipeline ([`dro_edge::EdgeLearner`]);
//! 2. **StalePrior { age }** — fetch failed or short-circuited: run the
//!    same pipeline on the last good prior if it is within TTL;
//! 3. **LocalOnly** — no usable prior: the paper's local-ERM baseline
//!    ([`dro_edge::baselines::fit_local_erm`]), the accuracy floor.
//!
//! Every fit returns a [`RuntimeFit`] tagged with its [`FitMode`], and the
//! runtime keeps a full mode trace plus deterministic counters so chaos
//! tests can assert bit-identical behaviour across runs.

use dre_data::Dataset;
use dre_models::LinearModel;
use dro_edge::{baselines, EdgeLearner, EdgeLearnerConfig, FitMode};

use crate::client::{PriorClient, RetryPolicy};
use crate::resilience::{BreakerConfig, BreakerState, CircuitBreaker, StalePriorCache};
use crate::transport::Connector;
use crate::Result as ServeResult;

/// Tuning for [`EdgeRuntime`].
#[derive(Debug, Clone)]
pub struct EdgeRuntimeConfig {
    /// Task family this device fetches priors for.
    pub task_id: u64,
    /// This device's identity on the report path: stamped into every
    /// `ModelReport` along with a monotone sequence number, so the server
    /// can drop replays and rate-limit per device.
    pub device_id: u64,
    /// Learner configuration for prior-based fits.
    pub learner: EdgeLearnerConfig,
    /// Ridge strength of the local-only ERM fallback.
    pub erm_lambda: f64,
    /// Circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Steps a cached prior stays servable after its fetch.
    pub stale_ttl: u64,
    /// Whether to report fitted models back to the cloud (best-effort, on
    /// fresh-prior fits only — a stale or local fit is not worth feeding
    /// into the cloud's lifelong refit loop).
    pub report_models: bool,
    /// Whether the underlying client holds one live stream across
    /// requests ([`PriorClient::keep_alive`]). Reconnection on a failed
    /// reuse rides the existing retry taxonomy, so breaker semantics are
    /// unchanged either way.
    pub keep_alive: bool,
}

impl Default for EdgeRuntimeConfig {
    fn default() -> Self {
        EdgeRuntimeConfig {
            task_id: 0,
            device_id: 0,
            learner: EdgeLearnerConfig::default(),
            erm_lambda: 1e-3,
            breaker: BreakerConfig::default(),
            stale_ttl: 8,
            report_models: true,
            keep_alive: false,
        }
    }
}

/// One fit step's outcome.
#[derive(Debug, Clone)]
pub struct RuntimeFit {
    /// The fitted model, whichever rung produced it.
    pub model: LinearModel,
    /// Which rung of the degradation ladder ran.
    pub mode: FitMode,
    /// Breaker state after the step.
    pub breaker: BreakerState,
    /// Whether the model was reported back *and accepted* by the cloud —
    /// a rejected ack ([`crate::frame::Message::ReportAck`]) leaves this
    /// false without counting as a report failure.
    pub reported: bool,
}

/// Deterministic counters the runtime keeps alongside the client metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Fits that ran on a freshly fetched prior.
    pub fresh_fits: u64,
    /// Fits that ran on a cached (stale) prior.
    pub stale_fits: u64,
    /// Fits that fell back to local-only ERM.
    pub local_only_fits: u64,
    /// Fetch operations that failed after the client's retry budget.
    pub fetch_failures: u64,
    /// Fetches skipped because the breaker was open.
    pub short_circuits: u64,
    /// Best-effort model reports that failed.
    pub report_failures: u64,
    /// Reports the server answered with a rejected ack (replay, rate cap,
    /// or shed). Unlike `report_failures` this spends no breaker budget:
    /// the link is healthy, the payload was just refused.
    pub reports_rejected: u64,
}

/// A device's fetch→fit→report loop with circuit breaking, stale-prior
/// caching, and local-only fallback.
pub struct EdgeRuntime<C: Connector> {
    client: PriorClient<C>,
    config: EdgeRuntimeConfig,
    breaker: CircuitBreaker,
    cache: StalePriorCache,
    step: u64,
    /// Monotone sequence number stamped into reports (next report gets
    /// `report_seq + 1`).
    report_seq: u64,
    mode_trace: Vec<FitMode>,
    counters: RuntimeCounters,
}

impl<C: Connector> EdgeRuntime<C> {
    /// A runtime speaking through `connector` under `policy`.
    pub fn new(connector: C, policy: RetryPolicy, config: EdgeRuntimeConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker.clone());
        let cache = StalePriorCache::new(config.stale_ttl);
        EdgeRuntime {
            client: PriorClient::new(connector, policy).keep_alive(config.keep_alive),
            config,
            breaker,
            cache,
            step: 0,
            report_seq: 0,
            mode_trace: Vec::new(),
            counters: RuntimeCounters::default(),
        }
    }

    /// The wrapped client (metrics, connector access).
    pub fn client(&self) -> &PriorClient<C> {
        &self.client
    }

    /// The connector, for chaos harness control (steps, partitions).
    pub fn connector(&self) -> &C {
        self.client.connector()
    }

    /// The circuit breaker (state, transition trace).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The stale-prior cache (age, stats).
    pub fn cache(&self) -> &StalePriorCache {
        &self.cache
    }

    /// Every fit's mode tag, in step order.
    pub fn mode_trace(&self) -> &[FitMode] {
        &self.mode_trace
    }

    /// Deterministic runtime counters.
    pub fn counters(&self) -> RuntimeCounters {
        self.counters
    }

    /// Logical steps taken so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// One fetch→fit→report step over `data`, degrading as needed. Only
    /// learner/solver failures surface as `Err`; connectivity trouble is
    /// absorbed by the degradation ladder.
    pub fn fit_step(&mut self, data: &Dataset) -> dro_edge::Result<RuntimeFit> {
        self.step += 1;
        let step = self.step;

        let mut fetched = None;
        if self.breaker.allow(step) {
            match self.client.fetch_prior(self.config.task_id) {
                Ok(prior) => {
                    self.breaker.on_success(step);
                    self.cache.put(step, prior.clone());
                    fetched = Some(prior);
                }
                Err(_) => {
                    self.counters.fetch_failures += 1;
                    self.breaker.on_failure(step);
                }
            }
        } else {
            self.counters.short_circuits += 1;
        }

        let (model, mode) = match fetched {
            Some(prior) => {
                let fit = EdgeLearner::new(self.config.learner, prior)?.fit(data)?;
                self.counters.fresh_fits += 1;
                (fit.model, FitMode::FreshPrior)
            }
            None => match self.cache.get(step) {
                Some((prior, age)) => {
                    let fit = EdgeLearner::new(self.config.learner, prior)?.fit(data)?;
                    self.counters.stale_fits += 1;
                    (fit.model, FitMode::StalePrior { age })
                }
                None => {
                    let model = baselines::fit_local_erm(data, self.config.erm_lambda)?;
                    self.counters.local_only_fits += 1;
                    (model, FitMode::LocalOnly)
                }
            },
        };

        let mut reported = false;
        if self.config.report_models && mode == FitMode::FreshPrior {
            match self.report(&model) {
                Ok(true) => reported = true,
                // A rejected ack is a healthy reply: no breaker penalty,
                // just a counted refusal the device can observe.
                Ok(false) => self.counters.reports_rejected += 1,
                Err(_) => {
                    self.counters.report_failures += 1;
                    self.breaker.on_failure(step);
                }
            }
        }

        self.mode_trace.push(mode);
        Ok(RuntimeFit {
            model,
            mode,
            breaker: self.breaker.state(),
            reported,
        })
    }

    fn report(&mut self, model: &LinearModel) -> ServeResult<bool> {
        let seq = self.report_seq + 1;
        let accepted = self.client.report_model(
            self.config.task_id,
            self.config.device_id,
            seq,
            model.to_packed(),
        )?;
        // The number is burned whether or not the server kept the report:
        // reusing it would read as a replay.
        self.report_seq = seq;
        Ok(accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{InMemoryServer, ServerState};
    use crate::transport::{FaultConfig, FaultInjector, FaultyConnector};
    use dre_linalg::Matrix;
    use std::sync::Arc;
    use std::time::Duration;

    const TASK: u64 = 9;

    fn seeded_dataset() -> Dataset {
        // A tiny linearly separable problem: labels follow sign(x0 - x1).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..16 {
            let a = (i as f64) * 0.37 % 2.0 - 1.0;
            let b = (i as f64) * 0.61 % 2.0 - 1.0;
            xs.push(vec![a, b]);
            ys.push(if a - b >= 0.0 { 1.0 } else { -1.0 });
        }
        Dataset::new(xs, ys).unwrap()
    }

    fn registered_state() -> Arc<ServerState> {
        let state = Arc::new(ServerState::new());
        let prior = dre_bayes::MixturePrior::new(vec![(
            1.0,
            vec![0.5, -0.5, 0.0],
            Matrix::identity(3),
        )])
        .unwrap();
        state.register_prior(TASK, &prior);
        state
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
            jitter_seed: 3,
        }
    }

    fn runtime_config() -> EdgeRuntimeConfig {
        EdgeRuntimeConfig {
            task_id: TASK,
            learner: EdgeLearnerConfig {
                em_rounds: 2,
                solver_iters: 25,
                multi_start: false,
                ..EdgeLearnerConfig::default()
            },
            breaker: BreakerConfig {
                failure_threshold: 1,
                cooldown_steps: 2,
                cooldown_jitter: 0,
                seed: 0,
            },
            stale_ttl: 2,
            ..EdgeRuntimeConfig::default()
        }
    }

    fn runtime(
        state: Arc<ServerState>,
        faults: FaultConfig,
        seed: u64,
    ) -> EdgeRuntime<FaultyConnector<InMemoryServer>> {
        let connector = FaultyConnector::new(
            InMemoryServer::with_state(state),
            FaultInjector::new(seed, faults),
        );
        EdgeRuntime::new(connector, fast_policy(), runtime_config())
    }

    #[test]
    fn healthy_link_stays_fresh_and_reports() {
        let state = registered_state();
        let mut rt = runtime(Arc::clone(&state), FaultConfig::default(), 1);
        let data = seeded_dataset();
        for _ in 0..3 {
            let fit = rt.fit_step(&data).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior);
            assert_eq!(fit.breaker, BreakerState::Closed);
            assert!(fit.reported);
        }
        assert_eq!(rt.counters().fresh_fits, 3);
        assert_eq!(state.take_reports().len(), 3);
    }

    #[test]
    fn degradation_ladder_fresh_stale_local() {
        let state = registered_state();
        let mut rt = runtime(Arc::clone(&state), FaultConfig::default(), 1);
        let data = seeded_dataset();

        // Step 1: healthy → fresh (fills the cache).
        assert_eq!(rt.fit_step(&data).unwrap().mode, FitMode::FreshPrior);

        // Partition far beyond the test horizon; breaker (threshold 1)
        // trips on the first failed fetch.
        rt.connector().partition_until(u64::MAX);
        let fit = rt.fit_step(&data).unwrap();
        assert_eq!(fit.mode, FitMode::StalePrior { age: 1 });
        assert_eq!(fit.breaker, BreakerState::Open);
        assert!(!fit.reported, "stale fits are never reported");

        // Step 3: breaker open → short-circuit, cache age 2 (== TTL).
        let fit = rt.fit_step(&data).unwrap();
        assert_eq!(fit.mode, FitMode::StalePrior { age: 2 });

        // Step 4: cache over TTL → terminal local-only fallback, and the
        // model is exactly the ERM baseline on the same data.
        let fit = rt.fit_step(&data).unwrap();
        assert_eq!(fit.mode, FitMode::LocalOnly);
        let baseline = baselines::fit_local_erm(&data, rt.config.erm_lambda).unwrap();
        assert_eq!(fit.model.to_packed(), baseline.to_packed());

        let counters = rt.counters();
        assert_eq!(counters.fresh_fits, 1);
        assert_eq!(counters.stale_fits, 2);
        assert_eq!(counters.local_only_fits, 1);
        // Step 2 fails outright; step 3 is short-circuited by the open
        // breaker; step 4's half-open probe fails again.
        assert_eq!(counters.fetch_failures, 2);
        assert_eq!(counters.short_circuits, 1);
        assert_eq!(
            rt.mode_trace(),
            &[
                FitMode::FreshPrior,
                FitMode::StalePrior { age: 1 },
                FitMode::StalePrior { age: 2 },
                FitMode::LocalOnly,
            ]
        );
    }

    #[test]
    fn breaker_recloses_and_modes_recover_after_heal() {
        let state = registered_state();
        let mut rt = runtime(Arc::clone(&state), FaultConfig::default(), 1);
        let data = seeded_dataset();

        assert_eq!(rt.fit_step(&data).unwrap().mode, FitMode::FreshPrior);
        rt.connector().partition_until(u64::MAX);
        for _ in 0..3 {
            assert!(rt.fit_step(&data).unwrap().mode != FitMode::FreshPrior);
        }
        // Heal the link; the next admitted probe re-closes the breaker.
        rt.connector().partition_until(0);
        let mut healed = false;
        for _ in 0..4 {
            let fit = rt.fit_step(&data).unwrap();
            if fit.mode == FitMode::FreshPrior {
                assert_eq!(fit.breaker, BreakerState::Closed);
                healed = true;
                break;
            }
        }
        assert!(healed, "runtime must recover fresh-prior fits after heal");
        assert!(rt.breaker().closes() >= 1);
        assert!(rt.breaker().opens() >= 1);
    }
}
