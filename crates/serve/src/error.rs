//! Failure taxonomy of the serving layer.
//!
//! The central design decision is the retryable/fatal split ([`
//! ServeError::is_retryable`]): transient transport trouble (timeouts,
//! resets, short reads, checksum mismatches, injected faults) is worth a
//! bounded retry with backoff, while protocol disagreements (version or
//! frame-structure mismatches) and semantic failures (unknown task, payload
//! that fails mixture validation) will fail identically on every attempt
//! and must surface immediately.

use std::fmt;
use std::io;

use crate::frame::ErrorCode;

/// Errors produced by the serving layer: transport, framing, protocol, and
/// payload failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// An OS-level socket failure (connect, read, write, or a deadline
    /// expiring). Transient by nature — retryable.
    Io {
        /// Which operation failed.
        op: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The peer closed the connection in the middle of a frame. Retryable:
    /// the next attempt opens a fresh connection.
    ShortRead {
        /// Bytes the frame still needed.
        expected: usize,
        /// Bytes actually delivered before the stream ended.
        got: usize,
    },
    /// The frame's CRC-32 did not match its contents — corruption in
    /// transit. Retryable; the corrupted payload is never surfaced.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// The peer speaks a different protocol version. Fatal: every retry
    /// would fail the same way.
    VersionMismatch {
        /// Version byte in the received frame.
        found: u8,
        /// The single version this build supports.
        supported: u8,
    },
    /// The frame violates the wire grammar (impossible length, unknown
    /// message kind, payload that does not parse). Fatal.
    MalformedFrame {
        /// What was wrong.
        reason: &'static str,
    },
    /// A frame declared a length above the configured cap — either a
    /// protocol bug or a hostile peer. Fatal.
    FrameTooLarge {
        /// Declared frame body length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The server answered with a protocol-level `Error` message. Fatal at
    /// this layer; the code says why (unknown task, unexpected message…).
    Remote {
        /// Machine-readable error code from the wire.
        code: ErrorCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The peer sent a well-formed message of the wrong kind for the
    /// current exchange (e.g. a `ModelReport` in reply to a
    /// `PriorRequest`). Fatal.
    UnexpectedMessage {
        /// Kind of message received.
        got: &'static str,
        /// What the exchange expected.
        expected: &'static str,
    },
    /// The frame arrived intact (CRC passed) but its prior payload failed
    /// `dro_edge::transfer` decoding or mixture validation. Fatal: the
    /// server would resend the same bytes.
    Payload(dro_edge::EdgeError),
    /// The retry budget ran out; `last` is the final attempt's error.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<ServeError>,
    },
    /// A deterministic fault injected by the test transport. Retryable —
    /// it stands in for a dropped connection.
    InjectedFault {
        /// Which fault fired.
        what: &'static str,
    },
    /// The server shed the request under load and asked the client to come
    /// back later. Retryable: overload is transient by definition, and the
    /// server tells us how long to wait.
    Busy {
        /// Server-suggested minimum backoff before the next attempt.
        retry_after: std::time::Duration,
    },
    /// The contacted shard does not own the requested task id — a redirect,
    /// not a failure. Retryable: the routing layer refreshes its shard map
    /// and the next attempt lands on the owner (or a replica).
    Misrouted {
        /// Task id the request asked for.
        task_id: u64,
        /// Human-readable detail from the shard (which epoch it routed by).
        detail: String,
    },
}

impl ServeError {
    /// True when a fresh attempt at the same request could plausibly
    /// succeed: transient transport failures, yes; protocol and payload
    /// disagreements, no.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Io { .. }
                | ServeError::ShortRead { .. }
                | ServeError::ChecksumMismatch { .. }
                | ServeError::InjectedFault { .. }
                | ServeError::Busy { .. }
                | ServeError::Misrouted { .. }
        )
    }

    /// Server-provided backoff hint, when the error carries one (a shed
    /// request). The retry loop takes the max of this and its own schedule.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            ServeError::Busy { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { op, source } => write!(f, "i/o failure during {op}: {source}"),
            ServeError::ShortRead { expected, got } => {
                write!(f, "short read: needed {expected} more byte(s), got {got}")
            }
            ServeError::ChecksumMismatch { expected, computed } => write!(
                f,
                "frame checksum mismatch: carried {expected:#010x}, computed {computed:#010x}"
            ),
            ServeError::VersionMismatch { found, supported } => write!(
                f,
                "peer speaks frame version {found}, this build speaks {supported}"
            ),
            ServeError::MalformedFrame { reason } => write!(f, "malformed frame: {reason}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ServeError::Remote { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            ServeError::UnexpectedMessage { got, expected } => {
                write!(f, "unexpected {got} message (expected {expected})")
            }
            ServeError::Payload(e) => write!(f, "prior payload failed to decode: {e}"),
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s); last error: {last}")
            }
            ServeError::InjectedFault { what } => write!(f, "injected fault: {what}"),
            ServeError::Busy { retry_after } => {
                write!(f, "server busy: retry after {retry_after:?}")
            }
            ServeError::Misrouted { task_id, detail } => {
                write!(f, "shard does not own task {task_id}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Payload(e) => Some(e),
            ServeError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

/// Convenience result alias for serving-layer operations.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_split_matches_the_taxonomy() {
        let retryable: Vec<ServeError> = vec![
            ServeError::Io {
                op: "read",
                source: io::Error::new(io::ErrorKind::TimedOut, "deadline"),
            },
            ServeError::ShortRead { expected: 4, got: 1 },
            ServeError::ChecksumMismatch { expected: 1, computed: 2 },
            ServeError::InjectedFault { what: "drop" },
            ServeError::Busy {
                retry_after: std::time::Duration::from_millis(20),
            },
            ServeError::Misrouted {
                task_id: 9,
                detail: "owned by shard 2 at epoch 4".into(),
            },
        ];
        for e in &retryable {
            assert!(e.is_retryable(), "{e} should be retryable");
        }
        // Only the shed path carries a backoff hint.
        assert_eq!(
            retryable[4].retry_after(),
            Some(std::time::Duration::from_millis(20))
        );
        assert_eq!(retryable[0].retry_after(), None);
        let fatal: Vec<ServeError> = vec![
            ServeError::VersionMismatch { found: 2, supported: 1 },
            ServeError::MalformedFrame { reason: "x" },
            ServeError::FrameTooLarge { len: 10, max: 5 },
            ServeError::Remote {
                code: ErrorCode::UnknownTask,
                detail: "t".into(),
            },
            ServeError::UnexpectedMessage { got: "Ping", expected: "PriorResponse" },
            ServeError::Payload(dro_edge::EdgeError::InvalidData { reason: "x" }),
            ServeError::RetriesExhausted {
                attempts: 3,
                last: Box::new(ServeError::ShortRead { expected: 1, got: 0 }),
            },
        ];
        for e in &fatal {
            assert!(!e.is_retryable(), "{e} should be fatal");
        }
    }

    #[test]
    fn display_and_sources() {
        let e = ServeError::Io {
            op: "connect",
            source: io::Error::new(io::ErrorKind::ConnectionRefused, "nope"),
        };
        assert!(e.to_string().contains("connect"));
        assert!(std::error::Error::source(&e).is_some());

        let e = ServeError::RetriesExhausted {
            attempts: 5,
            last: Box::new(ServeError::ChecksumMismatch { expected: 7, computed: 9 }),
        };
        assert!(e.to_string().contains("5 attempt"));
        assert!(e.to_string().contains("checksum"));
        assert!(std::error::Error::source(&e).is_some());

        let e = ServeError::MalformedFrame { reason: "bad kind" };
        assert!(std::error::Error::source(&e).is_none());
    }
}
