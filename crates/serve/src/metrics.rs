//! Transfer metrics kept on both ends of the serving layer.
//!
//! All counters are relaxed atomics: the serving layer increments them from
//! worker and client threads without any lock, and a [`MetricsSnapshot`]
//! reads a consistent-enough view for reporting. Latencies go into a
//! log-spaced histogram — bucket `i` holds durations whose microsecond
//! count has `ilog2 == i` — which keeps the whole structure fixed-size and
//! allocation-free while still resolving both sub-millisecond loopback
//! round-trips and multi-second retry storms.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2-spaced latency buckets: bucket 63 holds anything at or
/// above 2^63 µs, so every `u64` microsecond count maps to a bucket.
pub const LATENCY_BUCKETS: usize = 64;

/// Log2-spaced latency histogram with atomic buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a duration: `ilog2` of its microsecond count
    /// (durations under 1 µs land in bucket 0).
    pub fn bucket_index(d: Duration) -> usize {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        if micros == 0 {
            0
        } else {
            micros.ilog2() as usize
        }
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_index(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads all bucket counts.
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared transfer counters; the server keeps one per process, the client
/// one per [`crate::client::PriorClient`].
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests handled (server) or issued (client).
    pub requests: AtomicU64,
    /// Exchanges that completed with a well-formed, checksum-clean reply.
    pub responses_ok: AtomicU64,
    /// Exchanges that ended in an error (after retries, on the client).
    pub errors: AtomicU64,
    /// Extra attempts beyond the first (client only).
    pub retries: AtomicU64,
    /// Frames rejected by the CRC check.
    pub checksum_failures: AtomicU64,
    /// Payload + framing bytes received.
    pub bytes_in: AtomicU64,
    /// Payload + framing bytes sent.
    pub bytes_out: AtomicU64,
    /// Connections accepted (server) or opened (client).
    pub connections: AtomicU64,
    /// `Busy` replies sent (server) or received across attempts (client).
    pub busy: AtomicU64,
    /// Connections shed before reaching a worker because the accept queue
    /// was full (server only).
    pub shed_connections: AtomicU64,
    /// Worker panics caught and recovered from (server only).
    pub worker_panics: AtomicU64,
    /// Poisoned locks recovered by inheriting the last good value (server
    /// only).
    pub lock_recoveries: AtomicU64,
    /// `PriorRequest`s answered straight from the pre-encoded frame cache
    /// — no payload clone, no re-encode, no CRC recompute (server only).
    pub prior_cache_hits: AtomicU64,
    /// Prior frames encoded into the cache at registration time (server
    /// only) — each registry update pays the encode exactly once.
    pub prior_cache_builds: AtomicU64,
    /// Requests sent over an already-open keep-alive stream instead of a
    /// fresh connection (client only).
    pub reused_connections: AtomicU64,
    /// Registry snapshots built and published by the write path (server
    /// only): one per `register_prior`/`register_payload`. The lock-free
    /// read path never bumps this — readers adopt published snapshots by
    /// generation check alone.
    pub snapshot_publishes: AtomicU64,
    /// Nonblocking reads that found the socket empty (server only). A
    /// readiness-polled worker drains each socket greedily until the OS
    /// says `WouldBlock`; this counts those boundary probes. Timing-
    /// dependent, so excluded from `deterministic_counters`.
    pub wouldblock_reads: AtomicU64,
    /// Socket flushes that coalesced two or more pipelined replies into a
    /// single `write` (server only). Timing-dependent (depends on how many
    /// requests arrived in one readiness window), so excluded from
    /// `deterministic_counters`.
    pub batched_writes: AtomicU64,
    /// Fetches re-routed from a dead or misrouting shard to the next
    /// replica in ring order (routing client only).
    pub shard_failovers: AtomicU64,
    /// Shard-map fetches performed — one at routing-client construction
    /// plus one per epoch change it observes (routing client only).
    pub map_refreshes: AtomicU64,
    /// Replica registrations fanned out by `register_prior` beyond the
    /// primary — R−1 per registered task (plane only).
    pub replica_fanouts: AtomicU64,
    /// `PriorRequest`s for a task id this shard does not own, answered
    /// with a retryable `Misrouted` redirect (server only).
    pub misroutes: AtomicU64,
    /// Model reports dropped because the report inbox was at its
    /// configured cap ([`crate::server::ServeConfig::report_inbox_cap`]) —
    /// a report flood degrades into counted shedding instead of unbounded
    /// memory growth (server only). Per-device rate-cap drops land here
    /// too: both are capacity drops taken before the inbox.
    pub reports_shed: AtomicU64,
    /// Model reports dropped because their sequence number was at or
    /// below the device's last accepted one — a replayed or duplicated
    /// frame (server only).
    pub reports_replayed: AtomicU64,
    /// Reports gated by the learner's predictive admission check — scored
    /// against the SIR filter's collapsed predictive marginal and found
    /// too surprising to enter the filter (folded in by the learner).
    pub reports_gated: AtomicU64,
    /// Devices moved into the quarantined reputation state by the
    /// learner's admission ledger (folded in by the learner).
    pub devices_quarantined: AtomicU64,
    /// `ReportAck { accepted: false }` replies observed (client only):
    /// the server dropped this device's report before the inbox.
    pub reports_rejected: AtomicU64,
    /// Per-exchange latency distribution.
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            lock_recoveries: self.lock_recoveries.load(Ordering::Relaxed),
            prior_cache_hits: self.prior_cache_hits.load(Ordering::Relaxed),
            prior_cache_builds: self.prior_cache_builds.load(Ordering::Relaxed),
            reused_connections: self.reused_connections.load(Ordering::Relaxed),
            snapshot_publishes: self.snapshot_publishes.load(Ordering::Relaxed),
            wouldblock_reads: self.wouldblock_reads.load(Ordering::Relaxed),
            batched_writes: self.batched_writes.load(Ordering::Relaxed),
            shard_failovers: self.shard_failovers.load(Ordering::Relaxed),
            map_refreshes: self.map_refreshes.load(Ordering::Relaxed),
            replica_fanouts: self.replica_fanouts.load(Ordering::Relaxed),
            misroutes: self.misroutes.load(Ordering::Relaxed),
            reports_shed: self.reports_shed.load(Ordering::Relaxed),
            reports_replayed: self.reports_replayed.load(Ordering::Relaxed),
            reports_gated: self.reports_gated.load(Ordering::Relaxed),
            devices_quarantined: self.devices_quarantined.load(Ordering::Relaxed),
            reports_rejected: self.reports_rejected.load(Ordering::Relaxed),
            latency_buckets: self.latency.snapshot(),
        }
    }
}

/// Plain-data copy of [`ServeMetrics`], comparable and printable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests handled or issued.
    pub requests: u64,
    /// Exchanges that completed cleanly.
    pub responses_ok: u64,
    /// Exchanges that ended in an error.
    pub errors: u64,
    /// Extra attempts beyond the first.
    pub retries: u64,
    /// Frames rejected by the CRC check.
    pub checksum_failures: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// Connections accepted or opened.
    pub connections: u64,
    /// `Busy` replies sent or received.
    pub busy: u64,
    /// Connections shed at the accept queue.
    pub shed_connections: u64,
    /// Worker panics caught and recovered from.
    pub worker_panics: u64,
    /// Poisoned locks recovered.
    pub lock_recoveries: u64,
    /// Prior requests served from the pre-encoded frame cache.
    pub prior_cache_hits: u64,
    /// Prior frames encoded into the cache at registration time.
    pub prior_cache_builds: u64,
    /// Requests sent over an already-open keep-alive stream.
    pub reused_connections: u64,
    /// Registry snapshots built and published by the write path.
    pub snapshot_publishes: u64,
    /// Nonblocking reads that found the socket empty.
    pub wouldblock_reads: u64,
    /// Flushes that coalesced ≥ 2 pipelined replies into one write.
    pub batched_writes: u64,
    /// Fetches re-routed to the next replica in ring order.
    pub shard_failovers: u64,
    /// Shard-map fetches performed.
    pub map_refreshes: u64,
    /// Replica registrations fanned out beyond the primary.
    pub replica_fanouts: u64,
    /// Misrouted prior requests answered with a retryable redirect.
    pub misroutes: u64,
    /// Model reports dropped at the report-inbox cap or a device rate cap.
    pub reports_shed: u64,
    /// Model reports dropped as replays/duplicates.
    pub reports_replayed: u64,
    /// Reports gated by the learner's predictive admission check.
    pub reports_gated: u64,
    /// Devices quarantined by the learner's reputation ledger.
    pub devices_quarantined: u64,
    /// Rejected report acks observed by the client.
    pub reports_rejected: u64,
    /// Log2-spaced latency bucket counts.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
}

impl MetricsSnapshot {
    /// Total latency observations.
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// The counter fields minus wall-clock-dependent ones — equal across
    /// two runs of the same seeded scenario, unlike the latency histogram.
    /// `wouldblock_reads` and `batched_writes` are deliberately absent:
    /// both depend on how the kernel slices bytes across readiness
    /// windows, which no seed controls.
    pub fn deterministic_counters(&self) -> [u64; 25] {
        [
            self.requests,
            self.responses_ok,
            self.errors,
            self.retries,
            self.checksum_failures,
            self.bytes_in,
            self.bytes_out,
            self.connections,
            self.busy,
            self.shed_connections,
            self.worker_panics,
            self.lock_recoveries,
            self.prior_cache_hits,
            self.prior_cache_builds,
            self.reused_connections,
            self.snapshot_publishes,
            self.shard_failovers,
            self.map_refreshes,
            self.replica_fanouts,
            self.misroutes,
            self.reports_shed,
            self.reports_replayed,
            self.reports_gated,
            self.devices_quarantined,
            self.reports_rejected,
        ]
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests={} ok={} errors={} retries={} checksum_failures={}",
            self.requests, self.responses_ok, self.errors, self.retries, self.checksum_failures
        )?;
        writeln!(
            f,
            "bytes_in={} bytes_out={} connections={}",
            self.bytes_in, self.bytes_out, self.connections
        )?;
        writeln!(
            f,
            "busy={} shed_connections={} worker_panics={} lock_recoveries={}",
            self.busy, self.shed_connections, self.worker_panics, self.lock_recoveries
        )?;
        writeln!(
            f,
            "prior_cache_hits={} prior_cache_builds={} reused_connections={}",
            self.prior_cache_hits, self.prior_cache_builds, self.reused_connections
        )?;
        writeln!(
            f,
            "snapshot_publishes={} wouldblock_reads={} batched_writes={}",
            self.snapshot_publishes, self.wouldblock_reads, self.batched_writes
        )?;
        writeln!(
            f,
            "shard_failovers={} map_refreshes={} replica_fanouts={} misroutes={} reports_shed={}",
            self.shard_failovers,
            self.map_refreshes,
            self.replica_fanouts,
            self.misroutes,
            self.reports_shed
        )?;
        writeln!(
            f,
            "reports_replayed={} reports_gated={} devices_quarantined={} reports_rejected={}",
            self.reports_replayed,
            self.reports_gated,
            self.devices_quarantined,
            self.reports_rejected
        )?;
        write!(f, "latency:")?;
        let mut any = false;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            if count > 0 {
                any = true;
                write!(f, " [{}µs,{}µs)={}", 1u64 << i, 1u128 << (i + 1), count)?;
            }
        }
        if !any {
            write!(f, " (empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_of_micros() {
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(0)), 0);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(3)), 1);
        assert_eq!(LatencyHistogram::bucket_index(Duration::from_micros(4)), 2);
        assert_eq!(
            LatencyHistogram::bucket_index(Duration::from_micros(1023)),
            9
        );
        assert_eq!(
            LatencyHistogram::bucket_index(Duration::from_micros(1024)),
            10
        );
        assert_eq!(
            LatencyHistogram::bucket_index(Duration::from_secs(u64::MAX)),
            63
        );
    }

    #[test]
    fn record_and_snapshot() {
        let m = ServeMetrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.bytes_out.fetch_add(100, Ordering::Relaxed);
        m.latency.record(Duration::from_micros(5));
        m.latency.record(Duration::from_micros(7));
        m.latency.record(Duration::from_millis(3));
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.bytes_out, 100);
        assert_eq!(s.latency_count(), 3);
        assert_eq!(s.latency_buckets[2], 2); // 5 µs and 7 µs
        assert_eq!(s.latency_buckets[11], 1); // 3000 µs
        let shown = s.to_string();
        assert!(shown.contains("requests=3"));
        assert!(shown.contains("[4µs,8µs)=2"));
    }
}
