//! Hand-rolled table-driven CRC-32 (IEEE 802.3 / zlib polynomial).
//!
//! The build environment is fully offline, so instead of pulling a checksum
//! crate the frame codec uses this small implementation: slicing-by-8 over
//! eight 256-entry tables built at compile time from the reflected
//! polynomial `0xEDB88320`, falling back to the classic byte-at-a-time
//! loop for the unaligned tail. Slicing-by-8 processes eight payload bytes
//! per step, which matters because the client checksums every prior frame
//! it receives — on the keep-alive hot path the CRC verify is the largest
//! single CPU cost after the syscalls. The checksum value is identical to
//! the byte-at-a-time algorithm (the known-vector tests pin it), and
//! CRC-32 still detects *every* error burst of up to 32 bits, so any
//! single corrupted frame byte is guaranteed to be caught — the property
//! the serving layer's retry loop relies on (and that
//! `tests/frame_corruption.rs` exhaustively checks).

/// The reflected IEEE 802.3 generator polynomial.
const POLY: u32 = 0xEDB8_8320;

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is the
/// CRC of byte `b` followed by `k` zero bytes, which is what lets eight
/// bytes fold in one step.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Incremental CRC-32 state, for checksumming non-contiguous byte runs
/// (the frame codec covers header fields and payload without copying them
/// into one buffer).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum: slicing-by-8 over the
    /// aligned middle, byte-at-a-time over the tail.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
        self
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a contiguous byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // 32 zero bytes — exercises the table's zero row.
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 13, 500, 999, 1000] {
            let mut h = Crc32::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data));
        }
    }

    #[test]
    fn single_byte_changes_always_change_the_checksum() {
        let base = b"framed wire protocol".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for flip in 1..=255u8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= flip;
                assert_ne!(
                    crc32(&corrupted),
                    reference,
                    "byte {i} xor {flip} collided"
                );
            }
        }
    }
}
