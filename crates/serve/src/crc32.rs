//! Hand-rolled table-driven CRC-32 (IEEE 802.3 / zlib polynomial).
//!
//! The build environment is fully offline, so instead of pulling a checksum
//! crate the frame codec uses this 30-line implementation: the classic
//! byte-at-a-time algorithm over a 256-entry table built at compile time
//! from the reflected polynomial `0xEDB88320`. CRC-32 detects *every* error
//! burst of up to 32 bits, so any single corrupted frame byte is guaranteed
//! to be caught — the property the serving layer's retry loop relies on
//! (and that `tests/frame_corruption.rs` exhaustively checks).

/// The reflected IEEE 802.3 generator polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming non-contiguous byte runs
/// (the frame codec covers header fields and payload without copying them
/// into one buffer).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
        self
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a contiguous byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // 32 zero bytes — exercises the table's zero row.
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 13, 500, 999, 1000] {
            let mut h = Crc32::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data));
        }
    }

    #[test]
    fn single_byte_changes_always_change_the_checksum() {
        let base = b"framed wire protocol".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for flip in 1..=255u8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= flip;
                assert_ne!(
                    crc32(&corrupted),
                    reference,
                    "byte {i} xor {flip} collided"
                );
            }
        }
    }
}
