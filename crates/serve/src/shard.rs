//! The sharded prior plane: consistent-hash routing with per-task
//! replication across N [`PriorServer`] shards, plus the client-side
//! directory that routes requests straight to the owning shard and fails
//! over to replicas.
//!
//! Placement is a consistent-hash ring ([`HashRing`]): every shard
//! contributes `virtual_nodes` points derived from a stable seeded hash
//! ([`stable_shard_hash`] — no `std` hasher randomness, so every process
//! that holds the same [`ShardMapWire`] computes the same placement), and
//! a task's owners are the first `replication` *distinct* shards walking
//! clockwise from the task's hash point. [`ShardedPriorPlane`] fans each
//! registration out to all owners; because prior frames embed only the
//! payload (never the registry generation), the replica frames are
//! byte-identical, and a client failing over mid-fleet reads exactly the
//! bytes the primary would have served.
//!
//! Clients hold an epoch-stamped [`ShardMap`] in a shared
//! [`ShardDirectory`]. A per-task [`ShardConnector`] dials the task's
//! primary owner; [`crate::client::PriorClient`]'s retry loop reports
//! every retryable failure through [`crate::transport::Connector::
//! note_retryable_error`], and the connector advances to the next replica
//! (counted in [`crate::metrics::ServeMetrics::shard_failovers`]) — or,
//! on a [`crate::ServeError::Misrouted`] redirect, refreshes the map and
//! re-aims at the new primary, recovering within a single retry.
//! Re-sharding ([`ShardedPriorPlane::add_shard`] /
//! [`ShardedPriorPlane::remove_shard`]) bumps the map epoch and
//! republishes the route to every shard, so keep-alive clients re-route
//! on their next request instead of erroring.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use dre_bayes::MixturePrior;

use crate::client::{PriorClient, RetryPolicy};
use crate::frame::ShardMapWire;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::server::{PriorServer, ServeConfig, ServerHandle};
use crate::transport::{Connector, TcpConnector, TcpTransport};
use crate::{Result, ServeError};

/// Salt separating task-key hashes from ring-point hashes, so a task id
/// that happens to equal a virtual-node key never lands exactly on its
/// point by construction.
const TASK_SALT: u64 = 0x7A5C_5A17_5EED_CAFE;

/// Default shard count: `DRE_SERVE_SHARDS` when set (the CI shard-count
/// matrix uses this), otherwise 4.
pub fn default_shards() -> usize {
    std::env::var("DRE_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// A stable, seeded 64-bit mix (splitmix64 finalizer). Deterministic
/// across processes and platforms — the whole routing plane hangs off
/// every participant computing identical placements from the same
/// `(key, seed)`.
pub fn stable_shard_hash(key: u64, seed: u64) -> u64 {
    let mut z = key
        .wrapping_add(seed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring: `virtual_nodes` points per shard, sorted, with
/// owner lookup by clockwise walk. Built deterministically from
/// `(shards, virtual_nodes, seed)` alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, shard index)`, sorted by point (ties keep build order,
    /// which is itself deterministic).
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring for `shards` shards with `virtual_nodes` points
    /// each under `seed`.
    pub fn build(shards: usize, virtual_nodes: usize, seed: u64) -> HashRing {
        let virtual_nodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(shards * virtual_nodes);
        for shard in 0..shards {
            for vnode in 0..virtual_nodes {
                let key = ((shard as u64) << 32) | vnode as u64;
                points.push((stable_shard_hash(key, seed), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Index of the first ring point at or clockwise-after the task's
    /// hash.
    fn start_index(&self, task_id: u64, seed: u64) -> usize {
        let h = stable_shard_hash(task_id, seed ^ TASK_SALT);
        let i = self.points.partition_point(|&(p, _)| p < h);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// Appends the task's owner shards — the first `replication` distinct
    /// shards walking clockwise from its hash point — to `out`, primary
    /// first.
    pub fn owners_into(&self, task_id: u64, seed: u64, replication: usize, out: &mut Vec<usize>) {
        if self.points.is_empty() {
            return;
        }
        let want = replication.max(1).min(self.shards);
        let start = self.start_index(task_id, seed);
        let len = self.points.len();
        let before = out.len();
        for i in 0..len {
            let (_, shard) = self.points[(start + i) % len];
            if !out[before..].contains(&shard) {
                out.push(shard);
                if out.len() - before == want {
                    return;
                }
            }
        }
    }

    /// Whether `shard` is among the task's owners — the allocation-free
    /// form of [`HashRing::owners_into`] the per-request ownership check
    /// uses (shard counts ≤ 64 walk with a bitmask; larger rings fall
    /// back to the allocating walk).
    pub fn owns(&self, task_id: u64, seed: u64, replication: usize, shard: usize) -> bool {
        if self.points.is_empty() {
            return false;
        }
        if self.shards > 64 {
            let mut owners = Vec::new();
            self.owners_into(task_id, seed, replication, &mut owners);
            return owners.contains(&shard);
        }
        let want = replication.max(1).min(self.shards);
        let start = self.start_index(task_id, seed);
        let len = self.points.len();
        let mut seen: u64 = 0;
        let mut found = 0usize;
        for i in 0..len {
            let (_, s) = self.points[(start + i) % len];
            let bit = 1u64 << s;
            if seen & bit == 0 {
                if s == shard {
                    return true;
                }
                seen |= bit;
                found += 1;
                if found == want {
                    return false;
                }
            }
        }
        false
    }
}

/// The epoch-stamped shard map every participant routes by: the wire form
/// (what `ShardMapResponse` frames carry) plus the ring rebuilt from it.
/// Two processes holding equal wire maps route identically.
#[derive(Debug, Clone)]
pub struct ShardMap {
    wire: ShardMapWire,
    ring: HashRing,
}

impl ShardMap {
    /// Builds the routing map from its wire form.
    pub fn new(wire: ShardMapWire) -> ShardMap {
        let ring = HashRing::build(wire.shards.len(), wire.virtual_nodes as usize, wire.seed);
        ShardMap { wire, ring }
    }

    /// The wire form this map was built from.
    pub fn wire(&self) -> &ShardMapWire {
        &self.wire
    }

    /// The map's epoch — bumped on every membership change.
    pub fn epoch(&self) -> u64 {
        self.wire.epoch
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.wire.shards.len()
    }

    /// True when the map has no member shards.
    pub fn is_empty(&self) -> bool {
        self.wire.shards.is_empty()
    }

    /// The address of shard `index`.
    pub fn addr(&self, index: usize) -> SocketAddr {
        self.wire.shards[index]
    }

    /// Effective replication factor: the configured factor clamped to the
    /// member count (and at least 1).
    pub fn replication(&self) -> usize {
        (self.wire.replication as usize).max(1).min(self.len().max(1))
    }

    /// The task's owner shard indices, primary first.
    pub fn owners(&self, task_id: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.replication());
        self.ring
            .owners_into(task_id, self.wire.seed, self.replication(), &mut out);
        out
    }

    /// Whether shard `index` owns `task_id` (allocation-free).
    pub fn owns(&self, task_id: u64, index: usize) -> bool {
        self.ring
            .owns(task_id, self.wire.seed, self.replication(), index)
    }
}

/// Tuning knobs for [`ShardedPriorPlane::bind`].
#[derive(Debug, Clone)]
pub struct ShardPlaneConfig {
    /// Number of shards to bind.
    pub shards: usize,
    /// Replicas per task (clamped to the shard count).
    pub replication: usize,
    /// Virtual ring points per shard — more points, smoother balance.
    pub virtual_nodes: usize,
    /// Placement seed shared by every participant.
    pub seed: u64,
    /// Per-shard server configuration.
    pub serve: ServeConfig,
}

impl Default for ShardPlaneConfig {
    fn default() -> Self {
        ShardPlaneConfig {
            shards: default_shards(),
            replication: 2,
            virtual_nodes: 64,
            seed: 0x5EED_0D1E_D1E7_ED00,
            serve: ServeConfig::default(),
        }
    }
}

/// N prior-server shards behind one consistent-hash map: registrations
/// fan out to every replica, the epoch-stamped map is served by every
/// shard, and membership changes republish the map so keep-alive clients
/// re-route on their next request.
pub struct ShardedPriorPlane {
    config: ShardPlaneConfig,
    /// One slot per member; `None` while a shard is killed.
    handles: Vec<Option<ServerHandle>>,
    /// Member addresses — stable across kill/restart so clients can fail
    /// over to replicas without a map change.
    addrs: Vec<SocketAddr>,
    epoch: u64,
    map: ShardMap,
    /// Every payload ever registered, for deterministic replay when a
    /// shard restarts or ownership moves during a rebalance.
    payloads: HashMap<u64, Vec<u8>>,
    /// Plane-level routing metrics ([`ServeMetrics::replica_fanouts`]).
    metrics: Arc<ServeMetrics>,
}

impl ShardedPriorPlane {
    /// Binds `config.shards` servers on OS-assigned loopback ports,
    /// publishes the epoch-1 map to each, and returns the plane.
    pub fn bind(config: ShardPlaneConfig) -> Result<ShardedPriorPlane> {
        let shards = config.shards.max(1);
        let mut handles = Vec::with_capacity(shards);
        let mut addrs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let handle = PriorServer::bind("127.0.0.1:0", config.serve.clone())?;
            addrs.push(handle.addr());
            handles.push(Some(handle));
        }
        let mut plane = ShardedPriorPlane {
            config,
            handles,
            addrs,
            epoch: 1,
            map: ShardMap::new(ShardMapWire {
                epoch: 0,
                seed: 0,
                replication: 1,
                virtual_nodes: 1,
                shards: Vec::new(),
            }),
            payloads: HashMap::new(),
            metrics: Arc::new(ServeMetrics::new()),
        };
        plane.publish_map();
        Ok(plane)
    }

    /// Rebuilds the map at the current epoch and installs it as the shard
    /// route on every live member — one generation-bumping publication
    /// per shard, so their keep-alive readers adopt it lock-free.
    fn publish_map(&mut self) {
        self.map = ShardMap::new(ShardMapWire {
            epoch: self.epoch,
            seed: self.config.seed,
            replication: self.config.replication.max(1).min(self.addrs.len()) as u32,
            virtual_nodes: self.config.virtual_nodes.max(1) as u32,
            shards: self.addrs.clone(),
        });
        for (index, slot) in self.handles.iter().enumerate() {
            if let Some(handle) = slot {
                handle.state().install_shard_route(self.map.clone(), index);
            }
        }
    }

    /// The current routing map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The current map epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Member addresses, by shard index.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Number of members currently alive.
    pub fn live_count(&self) -> usize {
        self.handles.iter().filter(|h| h.is_some()).count()
    }

    /// The handle of shard `index`, if it is alive.
    pub fn handle(&self, index: usize) -> Option<&ServerHandle> {
        self.handles.get(index).and_then(|h| h.as_ref())
    }

    /// Plane-level routing metrics (replica fan-outs).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Point-in-time metrics of shard `index`, if it is alive.
    pub fn shard_metrics(&self, index: usize) -> Option<MetricsSnapshot> {
        self.handle(index).map(|h| h.metrics())
    }

    /// Registers (or replaces) the prior served for `task_id` on every
    /// owner replica.
    pub fn register_prior(&mut self, task_id: u64, prior: &MixturePrior) {
        self.register_payload(task_id, dro_edge::transfer::serialize_prior(prior));
    }

    /// Registers a raw transfer payload on every live owner replica —
    /// each replica write counts once in
    /// [`ServeMetrics::replica_fanouts`]. Frames don't embed the registry
    /// generation, so every replica serves byte-identical response
    /// frames. The payload is also recorded so restarts and rebalances
    /// can replay ownership deterministically.
    pub fn register_payload(&mut self, task_id: u64, payload: Vec<u8>) {
        for index in self.map.owners(task_id) {
            if let Some(handle) = &self.handles[index] {
                handle.state().register_payload(task_id, payload.clone());
                self.metrics.replica_fanouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.payloads.insert(task_id, payload);
    }

    /// Kills shard `index`: shuts the server down and frees its port. The
    /// map does **not** change — clients fail over to replicas on the
    /// resulting connection errors until [`ShardedPriorPlane::
    /// restart_shard`] brings the member back.
    pub fn kill_shard(&mut self, index: usize) {
        if let Some(mut handle) = self.handles[index].take() {
            handle.shutdown();
        }
    }

    /// Restarts a killed shard on its original address (bounded bind
    /// retries cover the OS releasing the port), reinstalls the current
    /// route, and replays every payload the shard owns.
    pub fn restart_shard(&mut self, index: usize) -> Result<()> {
        if self.handles[index].is_some() {
            return Ok(());
        }
        let addr = self.addrs[index].to_string();
        let mut last = None;
        let mut bound = None;
        for _ in 0..100 {
            match PriorServer::bind(&addr, self.config.serve.clone()) {
                Ok(handle) => {
                    bound = Some(handle);
                    break;
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let handle = match bound {
            Some(h) => h,
            None => return Err(last.expect("bind loop ran at least once")),
        };
        handle.state().install_shard_route(self.map.clone(), index);
        for (&task_id, payload) in &self.payloads {
            if self.map.owns(task_id, index) {
                handle.state().register_payload(task_id, payload.clone());
                self.metrics.replica_fanouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.handles[index] = Some(handle);
        Ok(())
    }

    /// Adds a member shard: binds it, bumps the epoch, republishes the
    /// map to every live member, and replays every payload onto its
    /// (possibly new) owners. Returns the new shard's index.
    pub fn add_shard(&mut self) -> Result<usize> {
        let handle = PriorServer::bind("127.0.0.1:0", self.config.serve.clone())?;
        self.addrs.push(handle.addr());
        self.handles.push(Some(handle));
        let index = self.handles.len() - 1;
        self.rebalance();
        Ok(index)
    }

    /// Removes member shard `index`: shuts it down, drops it from the
    /// map, bumps the epoch, republishes, and replays every payload onto
    /// the surviving owners.
    pub fn remove_shard(&mut self, index: usize) {
        if let Some(mut handle) = self.handles[index].take() {
            handle.shutdown();
        }
        self.handles.remove(index);
        self.addrs.remove(index);
        self.rebalance();
    }

    /// Bumps the epoch, republishes the map, and replays every recorded
    /// payload onto its current owners — ownership that moved lands on
    /// the new replicas, and clients re-adopt the map on their next
    /// request.
    fn rebalance(&mut self) {
        self.epoch += 1;
        self.publish_map();
        let payloads: Vec<(u64, Vec<u8>)> =
            self.payloads.iter().map(|(&t, p)| (t, p.clone())).collect();
        for (task_id, payload) in payloads {
            self.register_payload(task_id, payload);
        }
    }

    /// A shared client-side directory seeded with the current map.
    pub fn directory(&self) -> Arc<ShardDirectory> {
        ShardDirectory::new(self.map.clone())
    }

    /// Shuts every live shard down.
    pub fn shutdown(&mut self) {
        for slot in &mut self.handles {
            if let Some(mut handle) = slot.take() {
                handle.shutdown();
            }
        }
    }
}

impl Drop for ShardedPriorPlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The client-side shard directory: one shared, epoch-stamped
/// [`ShardMap`] plus the routing metrics every [`ShardConnector`] built
/// from it reports into. Refreshing fetches the map from the first member
/// that answers and adopts it only when its epoch is newer.
pub struct ShardDirectory {
    map: Mutex<ShardMap>,
    metrics: Arc<ServeMetrics>,
}

impl ShardDirectory {
    /// A directory seeded with `map`.
    pub fn new(map: ShardMap) -> Arc<ShardDirectory> {
        Arc::new(ShardDirectory {
            map: Mutex::new(map),
            metrics: Arc::new(ServeMetrics::new()),
        })
    }

    /// Bootstraps a directory by fetching the map from one known member.
    pub fn bootstrap(addr: SocketAddr) -> Result<Arc<ShardDirectory>> {
        let mut client = PriorClient::new(TcpConnector::new(addr), RetryPolicy::default());
        let wire = client.fetch_shard_map()?;
        Ok(Self::new(ShardMap::new(wire)))
    }

    fn map_lock(&self) -> MutexGuard<'_, ShardMap> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A clone of the current map.
    pub fn map(&self) -> ShardMap {
        self.map_lock().clone()
    }

    /// The current map epoch.
    pub fn epoch(&self) -> u64 {
        self.map_lock().epoch()
    }

    /// Shared routing metrics (failovers, map refreshes).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Re-fetches the map from the first member that answers, adopting it
    /// when its epoch is at least as new as the held one. Each successful
    /// adoption counts once in [`ServeMetrics::map_refreshes`]. Returns
    /// the epoch now held.
    pub fn refresh(&self) -> Result<u64> {
        let addrs: Vec<SocketAddr> = {
            let map = self.map_lock();
            (0..map.len()).map(|i| map.addr(i)).collect()
        };
        let mut last: Option<ServeError> = None;
        for addr in addrs {
            let mut client = PriorClient::new(TcpConnector::new(addr), RetryPolicy::no_retries());
            match client.fetch_shard_map() {
                Ok(wire) => {
                    let mut guard = self.map_lock();
                    if wire.epoch >= guard.epoch() {
                        *guard = ShardMap::new(wire);
                    }
                    let epoch = guard.epoch();
                    drop(guard);
                    self.metrics.map_refreshes.fetch_add(1, Ordering::Relaxed);
                    return Ok(epoch);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(ServeError::Io {
            op: "shard map refresh",
            source: std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "directory holds no shard addresses",
            ),
        }))
    }

    /// A routed keep-alive client for `task_id`.
    pub fn client_for(
        self: &Arc<Self>,
        task_id: u64,
        policy: RetryPolicy,
    ) -> PriorClient<ShardConnector> {
        PriorClient::new(ShardConnector::new(Arc::clone(self), task_id), policy).keep_alive(true)
    }
}

/// A per-task routing [`Connector`]: dials the task's primary owner and
/// walks the replica list on retryable failures. A
/// [`ServeError::Misrouted`] redirect instead schedules a directory
/// refresh, so the next attempt re-aims at the *new* primary — recovery
/// within one retry. Adopts a republished map automatically whenever the
/// directory's epoch moves.
pub struct ShardConnector {
    directory: Arc<ShardDirectory>,
    task_id: u64,
    /// Owner addresses at `epoch`, primary first.
    owners: Vec<SocketAddr>,
    epoch: u64,
    /// Which owner the next connect dials (`cursor % owners.len()`).
    cursor: usize,
    /// Refresh the directory map before the next connect.
    pending_refresh: bool,
    /// Deadlines installed on each dialed connection.
    connect_timeout: Duration,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl ShardConnector {
    /// A connector routing `task_id` through `directory`.
    pub fn new(directory: Arc<ShardDirectory>, task_id: u64) -> ShardConnector {
        let mut connector = ShardConnector {
            directory,
            task_id,
            owners: Vec::new(),
            epoch: 0,
            cursor: 0,
            pending_refresh: false,
            connect_timeout: Duration::from_secs(1),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
        };
        connector.adopt_map();
        connector
    }

    /// The task this connector routes.
    pub fn task_id(&self) -> u64 {
        self.task_id
    }

    /// The shared directory this connector routes through.
    pub fn directory(&self) -> &Arc<ShardDirectory> {
        &self.directory
    }

    /// The owner address the next connect will dial.
    pub fn current_target(&self) -> Option<SocketAddr> {
        if self.owners.is_empty() {
            None
        } else {
            Some(self.owners[self.cursor % self.owners.len()])
        }
    }

    fn adopt_map(&mut self) {
        let map = self.directory.map();
        self.epoch = map.epoch();
        self.owners = map
            .owners(self.task_id)
            .into_iter()
            .map(|i| map.addr(i))
            .collect();
        self.cursor = 0;
    }
}

impl Connector for ShardConnector {
    type Transport = TcpTransport;

    fn connect(&mut self) -> Result<TcpTransport> {
        if self.pending_refresh {
            self.pending_refresh = false;
            // Best-effort: a refresh that finds no live member leaves the
            // held map in place, and the replica walk below still runs.
            let _ = self.directory.refresh();
            self.adopt_map();
        } else if self.directory.epoch() != self.epoch {
            self.adopt_map();
        }
        let addr = self.current_target().ok_or(ServeError::Io {
            op: "shard route",
            source: std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "shard map holds no owners for this task",
            ),
        })?;
        let mut tcp = TcpConnector::new(addr);
        tcp.connect_timeout = self.connect_timeout;
        tcp.read_timeout = self.read_timeout;
        tcp.write_timeout = self.write_timeout;
        tcp.connect()
    }

    fn note_retryable_error(&mut self, error: &ServeError) {
        match error {
            // A redirect names the wrong shard, not a dead one: refresh
            // the map and start over at the (new) primary.
            ServeError::Misrouted { .. } => {
                self.pending_refresh = true;
                self.cursor = 0;
            }
            // Anything else transient: fail over to the next replica.
            _ => {
                self.cursor += 1;
                self.directory
                    .metrics
                    .shard_failovers
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;
    use crate::frame::Message;

    fn wire(shards: usize, replication: u32) -> ShardMapWire {
        ShardMapWire {
            epoch: 1,
            seed: 7_400,
            replication,
            virtual_nodes: 64,
            shards: (0..shards)
                .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap())
                .collect(),
        }
    }

    #[test]
    fn ring_is_deterministic_and_balanced() {
        let a = HashRing::build(4, 64, 42);
        let b = HashRing::build(4, 64, 42);
        assert_eq!(a, b, "same inputs must build the same ring");
        assert_ne!(
            a,
            HashRing::build(4, 64, 43),
            "a different seed must move the ring"
        );

        // Primary-ownership balance over many tasks: with 64 virtual
        // nodes per shard no shard should starve or dominate.
        let map = ShardMap::new(wire(4, 1));
        let mut counts = [0usize; 4];
        for task in 0..4_000u64 {
            counts[map.owners(task)[0]] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                (400..=2_000).contains(&n),
                "shard {shard} owns {n} of 4000 primaries — ring is badly unbalanced"
            );
        }
    }

    #[test]
    fn owners_are_distinct_primary_first_and_match_owns() {
        let map = ShardMap::new(wire(5, 3));
        for task in 0..500u64 {
            let owners = map.owners(task);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct shards");
            for shard in 0..5 {
                assert_eq!(
                    map.owns(task, shard),
                    owners.contains(&shard),
                    "owns() disagrees with owners() for task {task} shard {shard}"
                );
            }
        }
    }

    #[test]
    fn replication_clamps_to_member_count() {
        let map = ShardMap::new(wire(2, 9));
        assert_eq!(map.replication(), 2);
        for task in 0..50u64 {
            assert_eq!(map.owners(task).len(), 2);
        }
    }

    #[test]
    fn map_roundtrips_through_its_wire_form() {
        let map = ShardMap::new(wire(3, 2));
        let frame_bytes = frame::encode(&Message::ShardMapResponse {
            map: map.wire().clone(),
        });
        let decoded = match frame::decode(&frame_bytes).unwrap() {
            Message::ShardMapResponse { map } => map,
            other => panic!("expected ShardMapResponse, got {}", other.kind_name()),
        };
        let rebuilt = ShardMap::new(decoded);
        for task in 0..200u64 {
            assert_eq!(
                map.owners(task),
                rebuilt.owners(task),
                "a map rebuilt from its wire form must route identically"
            );
        }
    }

    #[test]
    fn plane_fans_registrations_out_to_byte_identical_replicas() {
        let mut plane = ShardedPriorPlane::bind(ShardPlaneConfig {
            shards: 3,
            replication: 2,
            serve: ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ..ShardPlaneConfig::default()
        })
        .unwrap();
        plane.register_payload(7, vec![1, 2, 3]);

        let owners = plane.shard_map().owners(7);
        assert_eq!(owners.len(), 2);
        let frames: Vec<_> = owners
            .iter()
            .map(|&i| {
                plane
                    .handle(i)
                    .unwrap()
                    .state()
                    .prior_entry(7)
                    .expect("owner must hold the replica")
                    .frame
            })
            .collect();
        assert_eq!(
            &frames[0][..],
            &frames[1][..],
            "replica frames must be byte-identical"
        );
        // Non-owners hold nothing.
        for i in 0..3 {
            if !owners.contains(&i) {
                assert!(plane.handle(i).unwrap().state().prior_entry(7).is_none());
            }
        }
        assert_eq!(plane.metrics().replica_fanouts, 2);
        plane.shutdown();
    }

    #[test]
    fn restart_replays_owned_payloads_and_rebalance_moves_them() {
        let mut plane = ShardedPriorPlane::bind(ShardPlaneConfig {
            shards: 2,
            replication: 2,
            serve: ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            ..ShardPlaneConfig::default()
        })
        .unwrap();
        plane.register_payload(1, vec![9]);
        plane.register_payload(2, vec![8]);

        plane.kill_shard(0);
        assert_eq!(plane.live_count(), 1);
        plane.restart_shard(0).unwrap();
        assert_eq!(plane.live_count(), 2);
        // r = 2 of 2 shards: the restarted member owns everything again.
        for (task, payload) in [(1u64, vec![9u8]), (2, vec![8])] {
            let entry = plane.handle(0).unwrap().state().prior_entry(task).unwrap();
            assert_eq!(*entry.payload, payload);
        }

        // Adding a member bumps the epoch and lands replicas on it per
        // the new map.
        let old_epoch = plane.epoch();
        let added = plane.add_shard().unwrap();
        assert_eq!(plane.epoch(), old_epoch + 1);
        for task in [1u64, 2] {
            for &owner in &plane.shard_map().owners(task) {
                assert!(
                    plane.handle(owner).unwrap().state().prior_entry(task).is_some(),
                    "task {task} missing on owner {owner} after rebalance"
                );
            }
        }
        let _ = added;
        plane.shutdown();
    }
}
