//! The cloud-side prior server: a per-core, readiness-polled runtime over
//! a lock-free prior read path.
//!
//! [`PriorServer::bind`] starts a `TcpListener` accept loop feeding N
//! event-loop workers (one per configured core). Each worker *owns* its
//! accepted connections outright — round-robin handoff from the accept
//! thread, then nonblocking sockets multiplexed with readiness polling
//! ([`dre_netpoll::poll`]) — so one worker serves thousands of keep-alive
//! streams without a thread per connection. Back-to-back pipelined
//! requests read in one readiness window are answered with their replies
//! coalesced into a single socket flush (counted in
//! [`ServeMetrics::batched_writes`]).
//!
//! The prior registry is published, not locked: writes
//! ([`ServerState::register_payload`]) build a fresh snapshot off to the
//! side under a mutex, swap it into place, and bump an atomic generation;
//! each worker holds a [`PriorView`] — an `Arc` of the last snapshot it
//! adopted — and revalidates it with a single atomic load per request. A
//! prior hit is therefore an atomic generation check, a `HashMap` lookup
//! in worker-owned memory, and one socket write of the pre-encoded frame:
//! **zero** `RwLock`/`Mutex` acquisitions (enforced by
//! [`ServerState::slow_path_lock_count`] in tests). Keep-alive clients
//! transparently observe re-registered priors because the generation
//! check runs on every request.
//!
//! Admission control and resilience keep their PR 3–4 semantics: the
//! accept thread sheds connections beyond `workers + queue_bound` (or the
//! explicit `max_connections`) with a [`Message::Busy`] reply, a global
//! in-flight cap sheds individual requests the same way, per-connection
//! read/write deadlines still bound a stalled peer, handler panics are
//! caught per connection (the event loop and its other connections
//! survive; counted in [`ServeMetrics::worker_panics`]), and poisoned
//! slow-path locks are healed by inheriting the last good value (counted
//! in [`ServeMetrics::lock_recoveries`]). The request → response logic
//! lives in [`ServerState::respond_bytes_view`], shared with
//! [`InMemoryServer`] so the fault-injection tests exercise byte-for-byte
//! the same responder as the real sockets. Shutdown is cooperative: a
//! shared `AtomicBool`, a wake to every worker, and a self-connection to
//! unblock `accept()`.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dre_bayes::MixturePrior;
use dre_netpoll::{PollFd, RawFd, WakeHandle, Waker};

use crate::frame::{self, ErrorCode, HealthStatus, Message, MessageRef, DEFAULT_MAX_FRAME_LEN};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::transport::{read_step, write_step, IoStep, Responder, TcpTransport, Transport};
use crate::{Result, ServeError};

/// Byte budget for an `Error { detail }` string on the wire — a
/// pathological decode error can't balloon the reply frame past this.
pub const MAX_ERROR_DETAIL_BYTES: usize = 256;

/// Truncates an error detail to [`MAX_ERROR_DETAIL_BYTES`] on a char
/// boundary, marking the cut with an ellipsis that stays inside the
/// budget.
fn cap_error_detail(detail: String) -> String {
    if detail.len() <= MAX_ERROR_DETAIL_BYTES {
        return detail;
    }
    let mut end = MAX_ERROR_DETAIL_BYTES - '…'.len_utf8();
    while !detail.is_char_boundary(end) {
        end -= 1;
    }
    let mut capped = detail;
    capped.truncate(end);
    capped.push('…');
    capped
}

/// Default worker count: `DRE_SERVE_WORKERS` when set (the CI worker-count
/// matrix uses this), otherwise 4.
fn default_workers() -> usize {
    std::env::var("DRE_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Default [`ServeConfig::report_inbox_cap`]: roomy enough that a learner
/// polling at any sane cadence never sheds, small enough that an
/// undrained inbox stays bounded (~64k reports).
pub const DEFAULT_REPORT_INBOX_CAP: usize = 64 << 10;

/// Default [`ServeConfig::report_device_cap`]: far above any honest
/// device's report cadence between learner drains, low enough that one
/// looping device cannot fill the shared inbox by itself.
pub const DEFAULT_REPORT_DEVICE_CAP: usize = 1 << 10;

/// Tuning knobs for [`PriorServer::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-core event-loop workers; each owns its accepted connections and
    /// multiplexes them with readiness polling.
    pub workers: usize,
    /// Per-connection read deadline: a connection that sends nothing for
    /// this long is closed (same semantics the threaded runtime enforced
    /// through socket timeouts).
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline: a connection whose peer accepts no
    /// reply bytes for this long is closed.
    pub write_timeout: Option<Duration>,
    /// Cap on a frame's declared body length.
    pub max_frame_len: usize,
    /// Connection slots beyond the worker count before the accept loop
    /// starts shedding with `Busy` replies; the total admission cap is
    /// `workers + queue_bound` unless `max_connections` overrides it.
    pub queue_bound: usize,
    /// Explicit cap on concurrently admitted connections. `None` derives
    /// `workers + queue_bound`, which reproduces the threaded runtime's
    /// admission behaviour (`workers` being served + `queue_bound`
    /// waiting).
    pub max_connections: Option<usize>,
    /// Global cap on requests being served at once; requests beyond it get
    /// a `Busy` reply instead of a response.
    pub max_in_flight: usize,
    /// Requests served on one connection before the server closes it — a
    /// fairness valve so a single chatty client cannot hold a worker
    /// forever (clients reconnect transparently on the next attempt).
    pub max_requests_per_conn: usize,
    /// Backoff hint carried inside `Busy` replies.
    pub busy_retry_after: Duration,
    /// High-water mark for per-connection read/write buffers: after a
    /// frame larger than this, the buffer shrinks back so one huge prior
    /// frame doesn't pin peak memory for the life of a keep-alive
    /// connection.
    pub buffer_high_water: usize,
    /// Poll-tick backstop: the longest a worker sleeps between deadline
    /// sweeps when no socket turns ready. Wake-ups (new connections,
    /// shutdown) interrupt it.
    pub poll_interval: Duration,
    /// Cap on buffered model reports: once the inbox holds this many
    /// undrained [`ReportedModel`]s, further reports are acknowledged but
    /// dropped (counted in [`ServeMetrics::reports_shed`]) — a report
    /// flood degrades into counted shedding instead of unbounded memory
    /// growth. A learner draining via [`ServerState::take_reports`] keeps
    /// the inbox far below the cap in normal operation.
    pub report_inbox_cap: usize,
    /// Per-device rate cap: reports a single device id may land in the
    /// inbox between learner drains. Reports beyond it are rejected and
    /// counted in [`ServeMetrics::reports_shed`] — one looping or
    /// flooding device degrades into counted shedding without crowding
    /// out the rest of the fleet.
    pub report_device_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: default_workers(),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            queue_bound: 64,
            max_connections: None,
            max_in_flight: 64,
            max_requests_per_conn: 1024,
            busy_retry_after: Duration::from_millis(25),
            buffer_high_water: 64 << 10,
            poll_interval: Duration::from_millis(10),
            report_inbox_cap: DEFAULT_REPORT_INBOX_CAP,
            report_device_cap: DEFAULT_REPORT_DEVICE_CAP,
        }
    }
}

impl ServeConfig {
    /// The admission cap actually enforced: `max_connections`, or
    /// `workers + queue_bound` when unset.
    pub fn admission_cap(&self) -> usize {
        self.max_connections
            .unwrap_or_else(|| self.workers.max(1) + self.queue_bound.max(1))
    }
}

/// A model reported back by an edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedModel {
    /// Task family the device belongs to.
    pub task_id: u64,
    /// Identity of the reporting edge device.
    pub device_id: u64,
    /// The device's monotone report sequence number (starts at 1).
    pub seq: u64,
    /// Packed model parameters `[w…, b]`.
    pub params: Vec<f64>,
}

/// Per-device admission state kept next to the inbox: the highest
/// sequence number accepted (replays never rewind it) and the number of
/// reports this device has landed since the last drain (the rate-cap
/// window).
#[derive(Debug, Clone, Copy, Default)]
struct DeviceWindow {
    last_seq: u64,
    since_drain: u64,
}

/// The report inbox plus the per-device replay/rate state that guards it.
/// One mutex covers both so an admission decision and its push are atomic
/// with respect to a concurrent drain.
#[derive(Debug, Default)]
struct ReportInbox {
    entries: Vec<ReportedModel>,
    devices: HashMap<u64, DeviceWindow>,
}

/// One registered prior: the raw transfer payload plus the fully encoded
/// `PriorResponse` frame the hot path serves, stamped with the registry
/// generation that built it. The frame (length prefix, CRC and all) is
/// encoded exactly once per registration; re-registering a task bumps the
/// generation and replaces the entry wholesale, so every in-flight
/// response keeps the frame it started with.
#[derive(Debug, Clone)]
pub struct PriorEntry {
    /// The raw `dro_edge::transfer` payload.
    pub payload: Arc<Vec<u8>>,
    /// The complete pre-encoded `PriorResponse` frame.
    pub frame: Arc<[u8]>,
    /// Registry generation at encode time (monotone across all tasks).
    pub generation: u64,
}

/// A response frame on its way out: either freshly encoded for this
/// request, or a shared reference into the pre-encoded prior-frame cache
/// — the cached case performs no payload clone, no re-encode, and no CRC
/// recompute.
#[derive(Debug, Clone)]
pub enum ResponseBytes {
    /// Encoded for this request.
    Owned(Vec<u8>),
    /// Served from the generation-stamped frame cache.
    Cached(Arc<[u8]>),
}

impl ResponseBytes {
    /// Whether this reply came from the pre-encoded cache.
    pub fn is_cached(&self) -> bool {
        matches!(self, ResponseBytes::Cached(_))
    }

    /// Moves the bytes into a plain vector (copies only the cached case).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            ResponseBytes::Owned(v) => v,
            ResponseBytes::Cached(a) => a.to_vec(),
        }
    }
}

impl std::ops::Deref for ResponseBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            ResponseBytes::Owned(v) => v,
            ResponseBytes::Cached(a) => a,
        }
    }
}

impl AsRef<[u8]> for ResponseBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// The registry as the read path sees it.
type Registry = HashMap<u64, PriorEntry>;

/// Routing identity a server carries once it joins a sharded plane: the
/// epoch-stamped map it routes by, this server's own index in that map,
/// and the complete pre-encoded `ShardMapResponse` frame served to map
/// requests — encoded once per (re)publication, exactly like prior
/// frames, so the hot path hands out a shared reference.
#[derive(Debug, Clone)]
pub struct ShardRoute {
    /// The plane-wide, epoch-stamped shard map.
    pub map: crate::shard::ShardMap,
    /// This server's index into the map's shard list.
    pub self_index: usize,
    /// Pre-encoded `ShardMapResponse` frame for zero-copy map serving.
    pub frame: Arc<[u8]>,
}

/// The write side's published state: the current immutable snapshot, the
/// shard route (when this server is part of a sharded plane), and the
/// generation that built them. Guarded by one mutex that only writers and
/// stale readers touch — installing or republishing a route is a
/// generation-bumping publication, so warm readers pick it up with the
/// same single atomic load that covers prior registrations.
#[derive(Debug)]
struct Published {
    snapshot: Arc<Registry>,
    route: Option<Arc<ShardRoute>>,
    generation: u64,
}

/// A reader's adopted registry snapshot: an `Arc` of the last published
/// map plus its generation. Each event-loop worker owns one; per request
/// it revalidates the view with a single atomic load
/// ([`ServerState::refresh_view`]) and only touches the slow-path mutex
/// when a publication happened since — so a prior hit on a current view
/// acquires **no lock at all**.
#[derive(Debug, Clone)]
pub struct PriorView {
    snapshot: Arc<Registry>,
    route: Option<Arc<ShardRoute>>,
    generation: u64,
}

impl PriorView {
    /// The generation this view was adopted at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shard route this view was adopted with, if any.
    pub fn route(&self) -> Option<&Arc<ShardRoute>> {
        self.route.as_ref()
    }

    /// Number of tasks visible in this view.
    pub fn len(&self) -> usize {
        self.snapshot.len()
    }

    /// True when no priors are visible in this view.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty()
    }
}

/// Everything the responder needs: the published prior registry, collected
/// model reports, load gauges, and server-side metrics.
#[derive(Debug)]
pub struct ServerState {
    /// Write side + publication slot: the current snapshot and generation.
    published: Mutex<Published>,
    /// Lock-free copy of the published generation; readers revalidate
    /// their [`PriorView`] against this with one atomic load per request.
    generation: AtomicU64,
    /// Models reported by edge devices, in arrival order, plus the
    /// per-device replay/rate state guarding admission into it.
    reports: Mutex<ReportInbox>,
    /// Inbox cap enforced on `ModelReport` arrivals; reports beyond it
    /// are rejected and shed ([`ServeMetrics::reports_shed`]).
    report_inbox_cap: AtomicU64,
    /// Per-device rate cap enforced on `ModelReport` arrivals between
    /// drains ([`ServeConfig::report_device_cap`]).
    report_device_cap: AtomicU64,
    /// Server-side transfer metrics.
    metrics: ServeMetrics,
    /// Connections handed to a worker but not yet adopted by its loop.
    pending: AtomicU64,
    /// Requests currently inside the responder across all workers.
    in_flight: AtomicU64,
    /// Connections currently admitted (owned by workers or in handoff);
    /// the accept loop sheds beyond [`ServeConfig::admission_cap`].
    admitted: AtomicU64,
    /// Every slow-path mutex acquisition (publication slot or reports
    /// inbox). The lock-freeness tests snapshot this around a burst of
    /// warm-view prior hits and assert it did not move.
    slow_path_locks: AtomicU64,
    /// Chaos hook: a `PriorRequest` for this task id panics inside the
    /// handler. `u64::MAX` disables the hook.
    panic_on_task: AtomicU64,
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState {
            published: Mutex::new(Published {
                snapshot: Arc::new(Registry::new()),
                route: None,
                generation: 0,
            }),
            generation: AtomicU64::new(0),
            reports: Mutex::new(ReportInbox::default()),
            report_inbox_cap: AtomicU64::new(DEFAULT_REPORT_INBOX_CAP as u64),
            report_device_cap: AtomicU64::new(DEFAULT_REPORT_DEVICE_CAP as u64),
            metrics: ServeMetrics::new(),
            pending: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            slow_path_locks: AtomicU64::new(0),
            panic_on_task: AtomicU64::new(u64::MAX),
        }
    }
}

impl ServerState {
    /// Empty state: no priors registered, no reports.
    pub fn new() -> Self {
        Self::default()
    }

    /// The publication slot, recovering from poisoning: a panic mid-write
    /// happened *before* the new snapshot was swapped in (the swap is the
    /// last statement under the lock), so inheriting the slot keeps the
    /// previous consistent snapshot published and beats refusing service.
    fn published_lock(&self) -> MutexGuard<'_, Published> {
        self.slow_path_locks.fetch_add(1, Ordering::Relaxed);
        self.published.lock().unwrap_or_else(|poisoned| {
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// The reports log, recovering from poisoning (a push and its
    /// device-window update either happened or did not — both leave a
    /// valid inbox).
    fn reports_lock(&self) -> MutexGuard<'_, ReportInbox> {
        self.slow_path_locks.fetch_add(1, Ordering::Relaxed);
        self.reports.lock().unwrap_or_else(|poisoned| {
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Clears poison left on the slow-path locks by a caught handler
    /// panic, counting each healed lock in
    /// [`ServeMetrics::lock_recoveries`]. Workers call this after
    /// `catch_unwind` so the next writer finds clean locks.
    pub fn heal_locks(&self) {
        if self.published.is_poisoned() {
            self.published.clear_poison();
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
        }
        if self.reports.is_poisoned() {
            self.reports.clear_poison();
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Slow-path mutex acquisitions so far — the lock-freeness tests
    /// assert this stays flat across warm-view prior hits.
    pub fn slow_path_lock_count(&self) -> u64 {
        self.slow_path_locks.load(Ordering::SeqCst)
    }

    /// Registers (or replaces) the prior served for `task_id`.
    pub fn register_prior(&self, task_id: u64, prior: &MixturePrior) {
        self.register_payload(task_id, dro_edge::transfer::serialize_prior(prior));
    }

    /// Registers a raw, already-encoded transfer payload for `task_id`.
    /// This is the write slow path: it encodes the complete
    /// `PriorResponse` frame once, builds a fresh registry snapshot off to
    /// the side, and publishes it with a generation bump — readers adopt
    /// the new snapshot on their next atomic generation check, so every
    /// keep-alive client transparently observes the new frame without the
    /// read path ever taking a lock.
    pub fn register_payload(&self, task_id: u64, payload: Vec<u8>) {
        // Encode outside the lock: registration pays the frame build, the
        // serving path never does.
        let frame: Arc<[u8]> = frame::encode_prior_response(&payload).into();
        self.metrics.prior_cache_builds.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.published_lock();
        let generation = slot.generation + 1;
        let mut next: Registry = (*slot.snapshot).clone();
        next.insert(
            task_id,
            PriorEntry {
                payload: Arc::new(payload),
                frame,
                generation,
            },
        );
        slot.snapshot = Arc::new(next);
        slot.generation = generation;
        // Publish the generation while still holding the lock, so any
        // reader that observes it will find at least this snapshot in the
        // slot.
        self.generation.store(generation, Ordering::Release);
        self.metrics
            .snapshot_publishes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Installs (or republishes) this server's shard route. The
    /// `ShardMapResponse` frame is encoded once, outside the lock; the
    /// route rides the same publication mechanism as prior registrations —
    /// a generation bump — so every keep-alive worker adopts the new map
    /// on its next single-atomic-load revalidation, and re-sharding never
    /// takes a lock on the read path.
    pub fn install_shard_route(&self, map: crate::shard::ShardMap, self_index: usize) {
        let frame: Arc<[u8]> = frame::encode(&Message::ShardMapResponse {
            map: map.wire().clone(),
        })
        .into();
        let route = Arc::new(ShardRoute { map, self_index, frame });
        let mut slot = self.published_lock();
        let generation = slot.generation + 1;
        slot.route = Some(route);
        slot.generation = generation;
        self.generation.store(generation, Ordering::Release);
        self.metrics
            .snapshot_publishes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The installed shard route, if this server joined a sharded plane
    /// (slow path: takes the publication lock once).
    pub fn shard_route(&self) -> Option<Arc<ShardRoute>> {
        self.prior_view().route
    }

    /// The current registry generation (0 before any registration).
    pub fn cache_generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Adopts the currently published snapshot (slow path: takes the
    /// publication lock once).
    pub fn prior_view(&self) -> PriorView {
        let slot = self.published_lock();
        PriorView {
            snapshot: Arc::clone(&slot.snapshot),
            route: slot.route.clone(),
            generation: slot.generation,
        }
    }

    /// Revalidates `view` with one atomic load; only when a publication
    /// happened since the view was adopted does it fall back to the lock
    /// to adopt the new snapshot. This is the entire cost a prior hit
    /// pays for registry coherence.
    pub fn refresh_view(&self, view: &mut PriorView) {
        let generation = self.generation.load(Ordering::Acquire);
        if generation != view.generation {
            *view = self.prior_view();
        }
    }

    /// The cached entry for `task_id`, if registered — tests use this to
    /// prove cached frames are bit-identical to fresh encodes.
    pub fn prior_entry(&self, task_id: u64) -> Option<PriorEntry> {
        self.prior_view().snapshot.get(&task_id).cloned()
    }

    /// Models reported so far, in arrival order. This *clones* the whole
    /// inbox — use it for inspection that must leave the log intact;
    /// consumers that process each report exactly once (the cloud
    /// learner's drain loop) should call [`ServerState::take_reports`]
    /// instead.
    pub fn reports(&self) -> Vec<ReportedModel> {
        self.reports_lock().entries.clone()
    }

    /// Drains the report inbox: returns every buffered report, in arrival
    /// order, leaving the inbox empty — no clone, and the freed capacity
    /// re-opens both the [`ServeConfig::report_inbox_cap`] admission
    /// window and every device's [`ServeConfig::report_device_cap`]
    /// window. Replay protection survives the drain: each device's
    /// last-accepted sequence number is kept, so a replayed frame is
    /// still dropped after the learner has consumed the original.
    pub fn take_reports(&self) -> Vec<ReportedModel> {
        let mut inbox = self.reports_lock();
        for window in inbox.devices.values_mut() {
            window.since_drain = 0;
        }
        std::mem::take(&mut inbox.entries)
    }

    /// Number of reports currently buffered in the inbox.
    pub fn report_backlog(&self) -> usize {
        self.reports_lock().entries.len()
    }

    /// Overrides the report-inbox cap (normally set from
    /// [`ServeConfig::report_inbox_cap`] at bind time).
    pub fn set_report_inbox_cap(&self, cap: usize) {
        self.report_inbox_cap.store(cap as u64, Ordering::Relaxed);
    }

    /// Overrides the per-device rate cap (normally set from
    /// [`ServeConfig::report_device_cap`] at bind time).
    pub fn set_report_device_cap(&self, cap: usize) {
        self.report_device_cap.store(cap as u64, Ordering::Relaxed);
    }

    /// Folds learner-side admission outcomes into this server's metrics:
    /// `gated` reports scored out by the predictive gate and `quarantined`
    /// devices newly moved into quarantine. The admission decision lives
    /// in `dre-learner`; the counters live here so one
    /// [`MetricsSnapshot`] tells the whole report-path story.
    pub fn note_admission_outcomes(&self, gated: u64, quarantined: u64) {
        if gated > 0 {
            self.metrics.reports_gated.fetch_add(gated, Ordering::Relaxed);
        }
        if quarantined > 0 {
            self.metrics
                .devices_quarantined
                .fetch_add(quarantined, Ordering::Relaxed);
        }
    }

    /// Point-in-time server metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Current load and resilience gauges, as served to `Health` requests.
    pub fn health_status(&self) -> HealthStatus {
        HealthStatus {
            queue_depth: self.pending.load(Ordering::Relaxed) as u32,
            in_flight: self.in_flight.load(Ordering::Relaxed) as u32,
            shed_connections: self.metrics.shed_connections.load(Ordering::Relaxed),
            worker_panics: self.metrics.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Arms the chaos hook: the next `PriorRequest` for `task_id` panics
    /// inside the handler (exercising worker panic recovery and lock
    /// poisoning). Pass `u64::MAX` to disarm.
    pub fn chaos_panic_on_task(&self, task_id: u64) {
        self.panic_on_task.store(task_id, Ordering::SeqCst);
    }

    /// When a shard route is installed and this server does not own
    /// `task_id`, builds the retryable `Misrouted` redirect (counted in
    /// [`ServeMetrics::misroutes`]); `None` means serve the request here.
    /// Unsharded servers (no route) own everything.
    fn misroute_redirect(&self, route: Option<&ShardRoute>, task_id: u64) -> Option<Message> {
        let route = route?;
        if route.map.owns(task_id, route.self_index) {
            return None;
        }
        self.metrics.misroutes.fetch_add(1, Ordering::Relaxed);
        Some(Message::Error {
            code: ErrorCode::Misrouted,
            detail: format!(
                "task {task_id} is not owned by shard {} at epoch {}",
                route.self_index,
                route.map.epoch()
            ),
        })
    }

    /// The report-admission decision taken before the inbox, under one
    /// lock so it is atomic with respect to a concurrent drain:
    ///
    /// 1. **Replay drop** — a sequence number at or below the device's
    ///    last accepted one is a replayed or duplicated frame
    ///    ([`ServeMetrics::reports_replayed`]); the device's window does
    ///    not advance.
    /// 2. **Rate cap** — a device that already landed
    ///    [`ServeConfig::report_device_cap`] reports since the last drain
    ///    is shed ([`ServeMetrics::reports_shed`]); its sequence number
    ///    still advances, so the dropped report cannot be replayed later.
    /// 3. **Inbox cap** — overflow past
    ///    [`ServeConfig::report_inbox_cap`] is shed the same way.
    ///
    /// Returns whether the report entered the inbox — the bit carried
    /// back in [`Message::ReportAck`].
    fn admit_report(&self, task_id: u64, device_id: u64, seq: u64, params: &[f64]) -> bool {
        let inbox_cap = self.report_inbox_cap.load(Ordering::Relaxed) as usize;
        let device_cap = self.report_device_cap.load(Ordering::Relaxed);
        let mut guard = self.reports_lock();
        let inbox = &mut *guard;
        let window = inbox.devices.entry(device_id).or_default();
        if seq <= window.last_seq {
            self.metrics.reports_replayed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        window.last_seq = seq;
        if window.since_drain >= device_cap || inbox.entries.len() >= inbox_cap {
            self.metrics.reports_shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        window.since_drain += 1;
        inbox.entries.push(ReportedModel {
            task_id,
            device_id,
            seq,
            params: params.to_vec(),
        });
        true
    }

    /// The protocol's request → response function.
    pub fn respond(&self, request: &Message) -> Message {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let response = match request {
            Message::Ping => Message::Ping,
            Message::Health => Message::HealthReport(self.health_status()),
            Message::PriorRequest { task_id } => {
                if *task_id == self.panic_on_task.load(Ordering::SeqCst) {
                    // Poison the publication slot on the way down so
                    // recovery of both the worker and the lock is
                    // exercised together.
                    let _guard = self.published_lock();
                    panic!("chaos hook: injected handler panic for task {task_id}");
                }
                let view = self.prior_view();
                if let Some(redirect) = self.misroute_redirect(view.route.as_deref(), *task_id) {
                    redirect
                } else {
                    let payload = view.snapshot.get(task_id).map(|e| Arc::clone(&e.payload));
                    match payload {
                        Some(p) => Message::PriorResponse {
                            payload: p.as_ref().clone(),
                        },
                        None => Message::Error {
                            code: ErrorCode::UnknownTask,
                            detail: format!("no prior registered for task {task_id}"),
                        },
                    }
                }
            }
            Message::ShardMapRequest => match self.shard_route() {
                Some(route) => Message::ShardMapResponse {
                    map: route.map.wire().clone(),
                },
                None => Message::Error {
                    code: ErrorCode::Unexpected,
                    detail: "this server is not part of a sharded plane".into(),
                },
            },
            Message::ModelReport {
                task_id,
                device_id,
                seq,
                params,
            } => {
                // Every drop — replay, rate cap, or inbox overflow — is
                // answered with a ReportAck whose bit says "rejected",
                // never a protocol error: the device's report leg must not
                // look like an outage (that would spend degradation
                // rungs), but the client can still tell absorbed from
                // dropped without diffing counters.
                let accepted = self.admit_report(*task_id, *device_id, *seq, params);
                Message::ReportAck { accepted }
            }
            other => Message::Error {
                code: ErrorCode::Unexpected,
                detail: format!("server cannot handle a {} message", other.kind_name()),
            },
        };
        if matches!(response, Message::Error { .. }) {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Decodes one request frame, responds, and encodes the reply through
    /// a freshly adopted [`PriorView`]. This is the shared/in-memory entry
    /// point (it pays one publication-lock clone per call); the polled
    /// workers call [`ServerState::respond_bytes_view`] with a long-lived
    /// view instead, which is the genuinely lock-free hot path.
    pub fn respond_bytes(&self, request_frame: &[u8]) -> ResponseBytes {
        let mut view = self.prior_view();
        self.respond_bytes_view(&mut view, request_frame)
    }

    /// Decodes one request frame, responds, and encodes the reply —
    /// updating byte counters and the latency histogram. Frame-level
    /// failures map onto protocol `Error` replies so the client always
    /// gets an answer it can classify. A `PriorRequest` hit is the
    /// zero-copy, zero-lock hot path: a borrowing decode
    /// ([`frame::decode_ref`]), one atomic generation check on `view`, a
    /// lookup in the view's worker-owned snapshot, and a shared reference
    /// to the pre-encoded frame — no lock, no payload clone, no
    /// re-encode, no CRC recompute (counted in
    /// [`ServeMetrics::prior_cache_hits`]).
    pub fn respond_bytes_view(&self, view: &mut PriorView, request_frame: &[u8]) -> ResponseBytes {
        let started = Instant::now();
        self.metrics
            .bytes_in
            .fetch_add(request_frame.len() as u64, Ordering::Relaxed);
        let reply = match frame::decode_ref(request_frame) {
            Ok(MessageRef::PriorRequest { task_id }) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                if task_id == self.panic_on_task.load(Ordering::SeqCst) {
                    // Poison the publication slot on the way down so
                    // recovery of both the worker and the lock is
                    // exercised together.
                    let _guard = self.published_lock();
                    panic!("chaos hook: injected handler panic for task {task_id}");
                }
                self.refresh_view(view);
                if let Some(redirect) = self.misroute_redirect(view.route.as_deref(), task_id) {
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    ResponseBytes::Owned(frame::encode(&redirect))
                } else {
                    match view.snapshot.get(&task_id) {
                        Some(entry) => {
                            self.metrics.prior_cache_hits.fetch_add(1, Ordering::Relaxed);
                            self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
                            ResponseBytes::Cached(Arc::clone(&entry.frame))
                        }
                        None => {
                            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                            ResponseBytes::Owned(frame::encode(&Message::Error {
                                code: ErrorCode::UnknownTask,
                                detail: format!("no prior registered for task {task_id}"),
                            }))
                        }
                    }
                }
            }
            Ok(MessageRef::ShardMapRequest) => {
                // Map fetches ride the same zero-copy cache as prior hits:
                // one atomic generation check, then a shared reference to
                // the frame encoded at route-publication time.
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                self.refresh_view(view);
                match view.route.as_ref() {
                    Some(route) => {
                        self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
                        ResponseBytes::Cached(Arc::clone(&route.frame))
                    }
                    None => {
                        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        ResponseBytes::Owned(frame::encode(&Message::Error {
                            code: ErrorCode::Unexpected,
                            detail: "this server is not part of a sharded plane".into(),
                        }))
                    }
                }
            }
            Ok(other) => ResponseBytes::Owned(frame::encode(&self.respond(&other.to_owned()))),
            Err(e) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                if matches!(e, ServeError::ChecksumMismatch { .. }) {
                    self.metrics
                        .checksum_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
                ResponseBytes::Owned(frame::encode(&Message::Error {
                    code: match e {
                        ServeError::VersionMismatch { .. } => ErrorCode::Version,
                        _ => ErrorCode::Malformed,
                    },
                    detail: cap_error_detail(e.to_string()),
                }))
            }
        };
        self.metrics
            .bytes_out
            .fetch_add(reply.len() as u64, Ordering::Relaxed);
        self.metrics.latency.record(started.elapsed());
        reply
    }

    /// Encodes a `Busy` reply for a request that is being shed, updating
    /// the same counters `respond_bytes` would — including the latency
    /// histogram, so shed requests stay visible in the latency profile.
    pub fn busy_bytes(&self, request_len: usize, retry_after: Duration) -> Vec<u8> {
        let started = Instant::now();
        self.metrics
            .bytes_in
            .fetch_add(request_len as u64, Ordering::Relaxed);
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.busy.fetch_add(1, Ordering::Relaxed);
        let bytes = frame::encode(&Message::Busy {
            retry_after_ms: retry_after.as_millis().min(u32::MAX as u128) as u32,
        });
        self.metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.metrics.latency.record(started.elapsed());
        bytes
    }
}

/// [`Responder`] running [`ServerState`] entirely in memory — the server
/// half of the fault-injection tests, with no sockets involved.
#[derive(Debug, Default)]
pub struct InMemoryServer {
    state: Arc<ServerState>,
}

impl InMemoryServer {
    /// An in-memory server over fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// An in-memory server sharing existing state.
    pub fn with_state(state: Arc<ServerState>) -> Self {
        InMemoryServer { state }
    }

    /// The shared state (registry, reports, metrics).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

impl Responder for InMemoryServer {
    fn respond(&self, request_frame: &[u8]) -> Vec<u8> {
        self.state.respond_bytes(request_frame).into_vec()
    }
}

// ---------------------------------------------------------------------------
// Per-connection buffers
// ---------------------------------------------------------------------------

/// Initial per-connection buffer size; most control frames fit in one.
const READ_CHUNK: usize = 4 << 10;

/// Shrinks a grow-only buffer back to `high_water` once the bytes it still
/// holds fit under it — the release valve that keeps one oversized frame
/// from pinning peak memory for the life of a keep-alive connection. The
/// first `used` bytes are preserved; a buffer still carrying more than
/// `high_water` live bytes is left alone.
fn shrink_buffer(buf: &mut Vec<u8>, used: usize, high_water: usize) {
    if buf.capacity() > high_water && used <= high_water {
        buf.truncate(high_water.max(used));
        buf.shrink_to(high_water.max(READ_CHUNK));
    }
}

/// One connection owned by an event-loop worker.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// Request bytes read but not yet consumed (`rlen` of them valid) —
    /// the greedy-read + carry buffer: a read may grab several pipelined
    /// frames or a fragment of the next one; leftovers stay here.
    rbuf: Vec<u8>,
    rlen: usize,
    /// Reply bytes not yet accepted by the socket (`wpos` already sent).
    wbuf: Vec<u8>,
    wpos: usize,
    served: usize,
    /// Last instant any request byte arrived (read-deadline clock).
    last_read: Instant,
    /// Last instant the socket accepted reply bytes (write-deadline clock).
    last_write: Instant,
    /// Serve nothing more; close once `wbuf` is flushed.
    close_after_flush: bool,
    /// Remove this connection at the end of the tick.
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let fd = dre_netpoll::tcp_raw_fd(&stream);
        let now = Instant::now();
        Ok(Conn {
            stream,
            fd,
            rbuf: Vec::new(),
            rlen: 0,
            wbuf: Vec::new(),
            wpos: 0,
            served: 0,
            last_read: now,
            last_write: now,
            close_after_flush: false,
            closed: false,
        })
    }

    /// Whether reply bytes are waiting on the socket.
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Drains the socket greedily (until `WouldBlock`), answers every
    /// complete frame through the worker's [`PriorView`], coalesces the
    /// replies, and flushes. Returns `false` when the connection must be
    /// dropped.
    fn service(
        &mut self,
        readable: bool,
        state: &ServerState,
        config: &ServeConfig,
        view: &mut PriorView,
        now: Instant,
    ) -> bool {
        let mut saw_eof = false;
        if readable && !self.close_after_flush {
            loop {
                if self.rlen == self.rbuf.len() {
                    let target = (self.rbuf.len() * 2).max(self.rlen + READ_CHUNK);
                    self.rbuf.resize(target, 0);
                }
                match read_step(&mut self.stream, &mut self.rbuf[self.rlen..]) {
                    Ok(IoStep::Progress(n)) => {
                        self.rlen += n;
                        self.last_read = now;
                    }
                    Ok(IoStep::WouldBlock) => {
                        state
                            .metrics
                            .wouldblock_reads
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Ok(IoStep::Eof) => {
                        saw_eof = true;
                        break;
                    }
                    Err(_) => return false,
                }
            }
        }

        // Answer every complete frame now buffered; replies coalesce into
        // one flush below.
        let mut replies = 0usize;
        while !self.close_after_flush && self.rlen >= frame::LEN_PREFIX {
            let len = u32::from_le_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]])
                as usize;
            if len > config.max_frame_len {
                // Same contract as the threaded runtime: answer the
                // oversized frame with a protocol error, then hang up.
                let reply = frame::encode(&Message::Error {
                    code: ErrorCode::Malformed,
                    detail: format!(
                        "frame of {len} bytes exceeds the {}-byte cap",
                        config.max_frame_len
                    ),
                });
                self.wbuf.extend_from_slice(&reply);
                replies += 1;
                self.close_after_flush = true;
                break;
            }
            let total = frame::LEN_PREFIX + len;
            if self.rlen < total {
                if self.rbuf.len() < total {
                    self.rbuf.resize(total, 0);
                }
                break; // wait for the rest of the frame
            }
            // Global in-flight cap: requests beyond it are shed with
            // `Busy`. The decrement lives in a drop guard so the gauge
            // survives a panicking handler.
            struct InFlight<'a>(&'a AtomicU64);
            impl Drop for InFlight<'_> {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, Ordering::Relaxed);
                }
            }
            let in_flight = state.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            let _gauge = InFlight(&state.in_flight);
            if in_flight as usize > config.max_in_flight.max(1) {
                let reply = state.busy_bytes(total, config.busy_retry_after);
                self.wbuf.extend_from_slice(&reply);
            } else {
                let reply = state.respond_bytes_view(view, &self.rbuf[..total]);
                self.wbuf.extend_from_slice(&reply);
            }
            drop(_gauge);
            replies += 1;
            self.rbuf.copy_within(total..self.rlen, 0);
            self.rlen -= total;
            self.served += 1;
            if self.served >= config.max_requests_per_conn.max(1) {
                // Fairness valve: flush what was answered, then hang up
                // (any still-buffered pipelined requests are dropped, as
                // the threaded runtime dropped them).
                self.close_after_flush = true;
            }
        }
        if replies > 1 {
            state.metrics.batched_writes.fetch_add(1, Ordering::Relaxed);
        }
        shrink_buffer(&mut self.rbuf, self.rlen, config.buffer_high_water);

        if saw_eof {
            if self.rlen > 0 && !self.close_after_flush {
                // Peer hung up mid-frame: nothing to answer, drop.
                return false;
            }
            self.close_after_flush = true;
        }

        // Coalesced flush: every reply produced this tick goes out in as
        // few `write` calls as the socket accepts.
        while self.wants_write() {
            match write_step(&mut self.stream, &self.wbuf[self.wpos..]) {
                Ok(IoStep::Progress(n)) => {
                    self.wpos += n;
                    self.last_write = now;
                }
                Ok(IoStep::WouldBlock) => break,
                Ok(IoStep::Eof) | Err(_) => return false,
            }
        }
        if !self.wants_write() {
            self.wbuf.clear();
            self.wpos = 0;
            shrink_buffer(&mut self.wbuf, 0, config.buffer_high_water);
            if self.close_after_flush {
                return false;
            }
        }
        true
    }

    /// Deadline sweep: drop connections whose peer neither sent a byte
    /// within the read deadline nor accepted reply bytes within the write
    /// deadline — the polled equivalent of the socket timeouts the
    /// threaded runtime installed per connection.
    fn past_deadline(&self, config: &ServeConfig, now: Instant) -> bool {
        if let Some(read) = config.read_timeout {
            if !self.wants_write() && now.duration_since(self.last_read) > read {
                return true;
            }
        }
        if let Some(write) = config.write_timeout {
            if self.wants_write() && now.duration_since(self.last_write) > write {
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// The per-core polled runtime
// ---------------------------------------------------------------------------

/// Handoff mailbox from the accept thread to one worker.
struct WorkerInbox {
    conns: Mutex<VecDeque<TcpStream>>,
    wake: WakeHandle,
}

impl WorkerInbox {
    fn push(&self, stream: TcpStream) {
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(stream);
        self.wake.wake();
    }

    fn drain_into(&self, out: &mut Vec<TcpStream>) {
        let mut guard = self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        out.extend(guard.drain(..));
    }
}

/// One per-core event loop: adopts handed-off connections, polls them for
/// readiness, services the ready ones (panics contained per connection),
/// sweeps deadlines, and retires closed connections.
fn run_worker(
    state: Arc<ServerState>,
    config: ServeConfig,
    waker: Waker,
    inbox: Arc<WorkerInbox>,
    shutdown: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut view = state.prior_view();
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut adopted: Vec<TcpStream> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // dropping `conns` closes every socket
        }
        pollfds.clear();
        pollfds.push(PollFd::new(waker.raw_fd(), true, false));
        for c in &conns {
            pollfds.push(PollFd::new(c.fd, true, c.wants_write()));
        }
        let ready = dre_netpoll::poll(&mut pollfds, Some(config.poll_interval)).unwrap_or(0);
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Adopt new connections when woken (or on an idle tick, as a
        // backstop against a lost wake).
        if pollfds[0].readable || ready == 0 {
            waker.drain();
            adopted.clear();
            inbox.drain_into(&mut adopted);
            for stream in adopted.drain(..) {
                state.pending.fetch_sub(1, Ordering::Relaxed);
                match Conn::new(stream) {
                    Ok(c) => conns.push(c),
                    Err(_) => {
                        state.admitted.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let now = Instant::now();
        for (i, conn) in conns.iter_mut().enumerate() {
            // New connections adopted this tick have no poll entry yet;
            // probe them immediately (their first request may already be
            // buffered).
            let readable = match pollfds.get(i + 1) {
                Some(ev) => ev.readable || ev.error,
                None => true,
            };
            let writable = pollfds.get(i + 1).is_some_and(|ev| ev.writable);
            if !(readable || writable) {
                continue;
            }
            // A panicking handler must not take the event loop (and its
            // other connections) with it: catch, count, heal the
            // slow-path locks, and drop only this connection.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                conn.service(readable, &state, &config, &mut view, now)
            }));
            match outcome {
                Ok(keep) => conn.closed = !keep,
                Err(_) => {
                    state.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                    state.heal_locks();
                    conn.closed = true;
                }
            }
        }
        for conn in &mut conns {
            if !conn.closed && conn.past_deadline(&config, now) {
                conn.closed = true;
            }
        }
        let before = conns.len();
        conns.retain(|c| !c.closed);
        let dropped = before - conns.len();
        if dropped > 0 {
            state.admitted.fetch_sub(dropped as u64, Ordering::Relaxed);
        }
    }
}

/// The TCP prior server; construct with [`PriorServer::bind`].
pub struct PriorServer;

impl PriorServer {
    /// Binds `addr` (use port 0 for an OS-assigned port), spawns the
    /// accept loop and the per-core worker event loops, and returns a
    /// handle that owns them.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Io {
            op: "bind",
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServeError::Io {
            op: "local_addr",
            source,
        })?;
        let state = Arc::new(ServerState::new());
        state.set_report_inbox_cap(config.report_inbox_cap);
        state.set_report_device_cap(config.report_device_cap);
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        let mut inboxes = Vec::with_capacity(workers);
        for _ in 0..workers {
            let waker = Waker::new().map_err(|source| ServeError::Io {
                op: "waker",
                source,
            })?;
            let inbox = Arc::new(WorkerInbox {
                conns: Mutex::new(VecDeque::new()),
                wake: waker.handle().map_err(|source| ServeError::Io {
                    op: "waker_handle",
                    source,
                })?,
            });
            inboxes.push(Arc::clone(&inbox));
            let state = Arc::clone(&state);
            let config = config.clone();
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                run_worker(state, config, waker, inbox, shutdown)
            }));
        }

        let accept_state = Arc::clone(&state);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_config = config.clone();
        let accept_inboxes: Vec<Arc<WorkerInbox>> = inboxes.iter().map(Arc::clone).collect();
        threads.push(std::thread::spawn(move || {
            let cap = accept_config.admission_cap() as u64;
            let mut next_worker = 0usize;
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // Replies must not wait on Nagle behind an unacked
                    // previous reply when the connection is kept alive.
                    let _ = stream.set_nodelay(true);
                    accept_state
                        .metrics
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    if accept_state.admitted.load(Ordering::Relaxed) >= cap {
                        accept_state
                            .metrics
                            .shed_connections
                            .fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream, &accept_state, &accept_config);
                        continue;
                    }
                    accept_state.admitted.fetch_add(1, Ordering::Relaxed);
                    accept_state.pending.fetch_add(1, Ordering::Relaxed);
                    accept_inboxes[next_worker].push(stream);
                    next_worker = (next_worker + 1) % accept_inboxes.len();
                }
            }
        }));

        Ok(ServerHandle {
            addr: local_addr,
            state,
            shutdown,
            threads,
            worker_wakes: inboxes,
        })
    }
}

/// Sheds one connection the accept loop could not admit: drains the
/// request that is (probably) already in flight, answers `Busy`, and hangs
/// up. Short deadlines keep a slow client from stalling the accept loop.
fn shed_connection(stream: TcpStream, state: &ServerState, config: &ServeConfig) {
    let deadline = Some(
        config
            .write_timeout
            .unwrap_or(Duration::from_millis(250))
            .min(Duration::from_millis(250)),
    );
    let mut transport = match TcpTransport::with_deadlines(stream, deadline, deadline) {
        Ok(t) => t,
        Err(_) => return,
    };
    // Read the pending request so closing the socket after the reply does
    // not reset it out from under the client; tolerate failures — the
    // `Busy` write below is best-effort either way.
    let mut request_len = 0usize;
    let mut lenb = [0u8; frame::LEN_PREFIX];
    if matches!(transport.recv_exact_or_eof(&mut lenb), Ok(true)) {
        let len = u32::from_le_bytes(lenb) as usize;
        if len <= config.max_frame_len {
            let mut body = vec![0u8; len];
            if transport.recv_exact(&mut body).is_ok() {
                request_len = frame::LEN_PREFIX + len;
            }
        }
    }
    let reply = state.busy_bytes(request_len, config.busy_retry_after);
    let _ = transport.send(&reply);
}

/// Owns a running [`PriorServer`]: its address, state, and threads.
/// Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    worker_wakes: Vec<Arc<WorkerInbox>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state — also usable as an [`InMemoryServer`] backing.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Registers (or replaces) the prior served for `task_id`.
    pub fn register_prior(&self, task_id: u64, prior: &MixturePrior) {
        self.state.register_prior(task_id, prior);
    }

    /// Point-in-time server metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.metrics()
    }

    /// Models reported by edge devices so far (cloned; the log is left
    /// intact — drain loops should use [`ServerHandle::take_reports`]).
    pub fn reports(&self) -> Vec<ReportedModel> {
        self.state.reports()
    }

    /// Drains the report inbox: every buffered report in arrival order,
    /// leaving the inbox empty.
    pub fn take_reports(&self) -> Vec<ReportedModel> {
        self.state.take_reports()
    }

    /// Signals shutdown and joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake every worker out of poll, and the accept loop out of its
        // blocking `accept()`.
        for inbox in &self.worker_wakes {
            inbox.wake.wake();
        }
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respond_covers_the_protocol() {
        let state = ServerState::new();
        state.register_payload(7, vec![1, 2, 3]);

        assert_eq!(state.respond(&Message::Ping), Message::Ping);
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 7 }),
            Message::PriorResponse {
                payload: vec![1, 2, 3]
            }
        );
        assert!(matches!(
            state.respond(&Message::PriorRequest { task_id: 8 }),
            Message::Error {
                code: ErrorCode::UnknownTask,
                ..
            }
        ));
        assert_eq!(
            state.respond(&Message::ModelReport {
                task_id: 7,
                device_id: 3,
                seq: 1,
                params: vec![1.0, 2.0],
            }),
            Message::ReportAck { accepted: true }
        );
        // Consume-once semantics: the drain hands the report over and
        // leaves the inbox empty.
        assert_eq!(
            state.take_reports(),
            vec![ReportedModel {
                task_id: 7,
                device_id: 3,
                seq: 1,
                params: vec![1.0, 2.0],
            }]
        );
        assert!(state.take_reports().is_empty());
        assert!(matches!(
            state.respond(&Message::PriorResponse { payload: vec![] }),
            Message::Error {
                code: ErrorCode::Unexpected,
                ..
            }
        ));

        let m = state.metrics();
        assert_eq!(m.requests, 5);
        assert_eq!(m.responses_ok, 3);
        assert_eq!(m.errors, 2);
    }

    fn report(task_id: u64, device_id: u64, seq: u64, params: Vec<f64>) -> Message {
        Message::ModelReport {
            task_id,
            device_id,
            seq,
            params,
        }
    }

    #[test]
    fn report_inbox_cap_sheds_with_a_rejected_ack_and_draining_reopens_the_window() {
        let state = ServerState::new();
        state.set_report_inbox_cap(2);
        for i in 0..5u64 {
            // Every report is answered with a ReportAck, never an error —
            // a flooding fleet sees its overflow *rejected*, not failed.
            assert_eq!(
                state.respond(&report(1, i, 1, vec![i as f64])),
                Message::ReportAck { accepted: i < 2 }
            );
        }
        // The inbox holds exactly the cap; the overflow was counted shed.
        assert_eq!(state.report_backlog(), 2);
        assert_eq!(state.metrics().reports_shed, 3);
        let kept = state.take_reports();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].params, vec![0.0]);
        assert_eq!(kept[1].params, vec![1.0]);

        // Draining re-opened the admission window.
        assert_eq!(
            state.respond(&report(1, 9, 1, vec![9.0])),
            Message::ReportAck { accepted: true }
        );
        assert_eq!(state.report_backlog(), 1);
        assert_eq!(state.metrics().reports_shed, 3);
    }

    #[test]
    fn replayed_and_rate_capped_reports_are_rejected_before_the_inbox() {
        let state = ServerState::new();
        state.set_report_device_cap(2);

        // Fresh sequence numbers are accepted up to the device cap.
        assert_eq!(
            state.respond(&report(1, 42, 1, vec![1.0])),
            Message::ReportAck { accepted: true }
        );
        // An equal or rewound sequence number is a replay.
        assert_eq!(
            state.respond(&report(1, 42, 1, vec![1.0])),
            Message::ReportAck { accepted: false }
        );
        assert_eq!(state.metrics().reports_replayed, 1);
        // The next fresh number still gets in…
        assert_eq!(
            state.respond(&report(1, 42, 2, vec![2.0])),
            Message::ReportAck { accepted: true }
        );
        // …but the device is now at its rate cap: shed, with the sequence
        // window still advancing so this frame cannot be replayed later.
        assert_eq!(
            state.respond(&report(1, 42, 3, vec![3.0])),
            Message::ReportAck { accepted: false }
        );
        assert_eq!(state.metrics().reports_shed, 1);
        assert_eq!(
            state.respond(&report(1, 42, 3, vec![3.0])),
            Message::ReportAck { accepted: false }
        );
        assert_eq!(state.metrics().reports_replayed, 2);

        // Another device is unaffected by 42's window.
        assert_eq!(
            state.respond(&report(1, 43, 1, vec![7.0])),
            Message::ReportAck { accepted: true }
        );

        // Draining resets the rate window but not replay protection.
        let kept = state.take_reports();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].seq, 1);
        assert_eq!(kept[1].seq, 2);
        assert_eq!(
            state.respond(&report(1, 42, 4, vec![4.0])),
            Message::ReportAck { accepted: true }
        );
        assert_eq!(
            state.respond(&report(1, 42, 2, vec![2.0])),
            Message::ReportAck { accepted: false },
            "a consumed report's sequence number must stay burned"
        );
        assert_eq!(state.metrics().reports_replayed, 3);
    }

    #[test]
    fn respond_bytes_reports_garbage_as_protocol_errors() {
        let state = ServerState::new();
        // A corrupted frame gets an Error reply, not a dropped connection.
        let mut bad = frame::encode(&Message::Ping);
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        // Corrupting the final CRC byte of an empty-payload frame…
        let reply = frame::decode(&state.respond_bytes(&bad)).unwrap();
        assert!(matches!(
            reply,
            Message::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        assert_eq!(state.metrics().checksum_failures, 1);

        // …and a valid-CRC future-version frame is told "Version".
        let mut v2 = frame::encode(&Message::Ping);
        v2[4] = 2;
        let crc = crate::crc32::Crc32::new().update(&[2, 0]).finalize();
        v2[6..10].copy_from_slice(&crc.to_le_bytes());
        let reply = frame::decode(&state.respond_bytes(&v2)).unwrap();
        assert!(matches!(
            reply,
            Message::Error {
                code: ErrorCode::Version,
                ..
            }
        ));
    }

    #[test]
    fn tcp_server_serves_and_shuts_down() {
        let mut handle = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        handle.state().register_payload(1, vec![9, 9, 9]);

        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(5)),
        )
        .unwrap();
        frame::write_frame(&mut t, &Message::PriorRequest { task_id: 1 }).unwrap();
        let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, Message::PriorResponse { payload: vec![9, 9, 9] });

        // Two requests on one connection: the loop keeps serving.
        frame::write_frame(&mut t, &Message::Ping).unwrap();
        let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, Message::Ping);
        drop(t);

        handle.shutdown();
        handle.shutdown(); // idempotent
        assert!(handle.metrics().requests >= 2);
    }

    #[test]
    fn health_reports_load_gauges() {
        let state = ServerState::new();
        match state.respond(&Message::Health) {
            Message::HealthReport(h) => {
                assert_eq!(h, HealthStatus::default());
            }
            other => panic!("expected HealthReport, got {}", other.kind_name()),
        }
        // Health counts as a served request, not an error.
        let m = state.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.responses_ok, 1);
        assert_eq!(m.errors, 0);
    }

    #[test]
    fn busy_bytes_counts_and_encodes_the_hint() {
        let state = ServerState::new();
        let reply = state.busy_bytes(10, Duration::from_millis(40));
        assert_eq!(
            frame::decode(&reply).unwrap(),
            Message::Busy { retry_after_ms: 40 }
        );
        let m = state.metrics();
        assert_eq!(m.busy, 1);
        assert_eq!(m.requests, 1);
        assert_eq!(m.bytes_in, 10);
        assert_eq!(m.bytes_out, reply.len() as u64);
        // Shed requests land in the latency histogram like any other.
        assert_eq!(m.latency_count(), 1);
    }

    #[test]
    fn error_detail_is_capped_on_a_char_boundary() {
        // Under budget: untouched.
        let short = "x".repeat(MAX_ERROR_DETAIL_BYTES);
        assert_eq!(cap_error_detail(short.clone()), short);
        // Over budget: truncated to the budget, ellipsis included.
        let long = "x".repeat(MAX_ERROR_DETAIL_BYTES + 100);
        let capped = cap_error_detail(long);
        assert_eq!(capped.len(), MAX_ERROR_DETAIL_BYTES);
        assert!(capped.ends_with('…'));
        // Multi-byte chars never get split: 'é' is 2 bytes, so the byte
        // budget lands mid-char and the cut backs up to a boundary.
        let multi = "é".repeat(MAX_ERROR_DETAIL_BYTES);
        let capped = cap_error_detail(multi);
        assert!(capped.len() <= MAX_ERROR_DETAIL_BYTES);
        assert!(capped.ends_with('…'));
        assert!(String::from_utf8(capped.into_bytes()).is_ok());
    }

    #[test]
    fn prior_hits_serve_the_cached_frame() {
        let state = ServerState::new();
        state.register_payload(7, vec![1, 2, 3]);
        assert_eq!(state.cache_generation(), 1);
        assert_eq!(state.metrics().prior_cache_builds, 1);
        assert_eq!(state.metrics().snapshot_publishes, 1);

        let request = frame::encode(&Message::PriorRequest { task_id: 7 });
        let reply = state.respond_bytes(&request);
        assert!(reply.is_cached(), "prior hit must come from the cache");
        // The cached frame is bit-identical to a fresh encode.
        assert_eq!(
            &reply[..],
            &frame::encode(&Message::PriorResponse {
                payload: vec![1, 2, 3]
            })[..]
        );
        let m = state.metrics();
        assert_eq!(m.prior_cache_hits, 1);
        assert_eq!(m.responses_ok, 1);

        // Re-registering bumps the generation and swaps the frame.
        state.register_payload(7, vec![9, 9]);
        assert_eq!(state.cache_generation(), 2);
        assert_eq!(state.metrics().snapshot_publishes, 2);
        let entry = state.prior_entry(7).unwrap();
        assert_eq!(entry.generation, 2);
        assert_eq!(
            &entry.frame[..],
            &frame::encode(&Message::PriorResponse {
                payload: vec![9, 9]
            })[..]
        );
        // A miss is an owned Error frame, not a cache entry.
        let miss = state.respond_bytes(&frame::encode(&Message::PriorRequest { task_id: 404 }));
        assert!(!miss.is_cached());
    }

    #[test]
    fn warm_view_prior_hits_take_no_lock() {
        let state = ServerState::new();
        state.register_payload(3, vec![0xAB; 32]);
        let request = frame::encode(&Message::PriorRequest { task_id: 3 });

        let mut view = state.prior_view();
        // Warm-up hit (the view is already current, but measure after it
        // anyway so the assertion covers steady state only).
        let _ = state.respond_bytes_view(&mut view, &request);
        let locks_before = state.slow_path_lock_count();
        for _ in 0..1_000 {
            let reply = state.respond_bytes_view(&mut view, &request);
            assert!(reply.is_cached());
        }
        assert_eq!(
            state.slow_path_lock_count(),
            locks_before,
            "a prior hit on a current view must acquire zero locks"
        );

        // A publication invalidates the view: exactly one slow-path
        // adoption, then lock-free again.
        state.register_payload(3, vec![0xCD; 32]);
        let locks_before = state.slow_path_lock_count();
        let reply = state.respond_bytes_view(&mut view, &request);
        assert_eq!(
            &reply[..],
            &frame::encode(&Message::PriorResponse {
                payload: vec![0xCD; 32]
            })[..],
            "keep-alive readers must observe the re-registered frame"
        );
        assert_eq!(state.slow_path_lock_count(), locks_before + 1);
        let locks_before = state.slow_path_lock_count();
        let _ = state.respond_bytes_view(&mut view, &request);
        assert_eq!(state.slow_path_lock_count(), locks_before);
    }

    #[test]
    fn poisoned_publication_slot_is_recovered_not_fatal() {
        let state = Arc::new(ServerState::new());
        state.register_payload(1, vec![7]);
        // Poison the publication slot by panicking while holding it.
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.published.lock().unwrap();
            panic!("poison the publication slot");
        })
        .join();
        assert!(state.published.is_poisoned());
        // Reads and writes still work, inheriting the last good snapshot…
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 1 }),
            Message::PriorResponse { payload: vec![7] }
        );
        state.register_payload(2, vec![8]);
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 2 }),
            Message::PriorResponse { payload: vec![8] }
        );
        // …and every recovery is counted.
        assert!(state.metrics().lock_recoveries >= 1);

        // heal_locks clears residual poison and counts it.
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.published.lock().unwrap();
            panic!("poison again");
        })
        .join();
        let before = state.metrics().lock_recoveries;
        state.heal_locks();
        assert!(!state.published.is_poisoned());
        assert_eq!(state.metrics().lock_recoveries, before + 1);
        state.heal_locks(); // idempotent on clean locks
        assert_eq!(state.metrics().lock_recoveries, before + 1);
    }

    #[test]
    fn worker_panic_is_counted_and_the_pool_survives() {
        let config = ServeConfig {
            workers: 1, // one event loop: if it died, the follow-up would hang
            read_timeout: Some(Duration::from_secs(2)),
            ..ServeConfig::default()
        };
        let mut handle = PriorServer::bind("127.0.0.1:0", config).unwrap();
        handle.state().register_payload(1, vec![5]);
        handle.state().chaos_panic_on_task(13);

        let mut client = crate::client::PriorClient::new(
            crate::transport::TcpConnector::new(handle.addr()),
            crate::client::RetryPolicy::no_retries(),
        );
        // The poisoned request dies mid-connection: the client sees a
        // transient transport error (here wrapped by the exhausted
        // single-attempt budget), never a protocol-level failure.
        let err = client.fetch_prior_payload(13).unwrap_err();
        match err {
            ServeError::RetriesExhausted { last, .. } => {
                assert!(last.is_retryable(), "worker panic must read as transient")
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        // The event loop survived the panic: it still serves.
        assert_eq!(client.fetch_prior_payload(1).unwrap(), vec![5]);
        let m = handle.metrics();
        assert_eq!(m.worker_panics, 1);
        assert!(m.lock_recoveries >= 1, "poisoned slot was healed");
        // Health reflects the panic and a drained in-flight gauge.
        let h = client.health().unwrap();
        assert_eq!(h.worker_panics, 1);
        // The health request counts itself; a leaked gauge would read 2+.
        assert_eq!(h.in_flight, 1, "in-flight gauge must survive the panic");
        handle.shutdown();
    }

    #[test]
    fn per_connection_request_cap_closes_the_stream() {
        let config = ServeConfig {
            max_requests_per_conn: 2,
            ..ServeConfig::default()
        };
        let mut handle = PriorServer::bind("127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(2)),
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        for _ in 0..2 {
            frame::write_frame(&mut t, &Message::Ping).unwrap();
            let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
            assert_eq!(reply, Message::Ping);
        }
        // Third request on the same connection: the server has hung up.
        let _ = frame::write_frame(&mut t, &Message::Ping);
        assert!(frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).is_err());
        // A fresh connection is served normally.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(2)),
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        frame::write_frame(&mut t, &Message::Ping).unwrap();
        assert!(frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).is_ok());
        handle.shutdown();
    }

    #[test]
    fn oversized_buffers_shrink_back_to_the_high_water_mark() {
        let high = 64 << 10;
        // A read buffer blown up by one huge frame, now holding a small
        // carry: shrinks back to the mark, carry preserved.
        let mut buf = vec![0u8; 1 << 20];
        buf[0] = 0xAA;
        buf[1] = 0xBB;
        shrink_buffer(&mut buf, 2, high);
        assert!(buf.capacity() <= 2 * high, "capacity {}", buf.capacity());
        assert_eq!(buf.len(), high);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);

        // A buffer still carrying more live bytes than the mark is left
        // alone — shrinking would lose data.
        let mut buf = vec![7u8; 1 << 20];
        let used = buf.len();
        shrink_buffer(&mut buf, used, high);
        assert_eq!(buf.len(), 1 << 20);
        assert!(buf.iter().all(|&b| b == 7));

        // A small buffer never grows from shrinking.
        let mut buf = vec![1u8; 16];
        shrink_buffer(&mut buf, 16, high);
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn admission_cap_defaults_to_workers_plus_queue_bound() {
        let config = ServeConfig {
            workers: 2,
            queue_bound: 5,
            ..ServeConfig::default()
        };
        assert_eq!(config.admission_cap(), 7);
        let config = ServeConfig {
            max_connections: Some(1000),
            ..config
        };
        assert_eq!(config.admission_cap(), 1000);
    }
}
