//! The cloud-side prior server.
//!
//! [`PriorServer::bind`] starts a `TcpListener` accept loop feeding a fixed
//! pool of worker threads through an `mpsc` channel; each worker runs one
//! connection at a time with per-connection read/write deadlines. The
//! request → response logic lives in [`ServerState::respond`], shared with
//! [`InMemoryServer`] so the fault-injection tests exercise byte-for-byte
//! the same responder as the real sockets. Shutdown is cooperative: a
//! shared `AtomicBool` plus a self-connection to wake the blocked
//! `accept()`.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dre_bayes::MixturePrior;

use crate::frame::{self, ErrorCode, Message, DEFAULT_MAX_FRAME_LEN};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::transport::{Responder, TcpTransport, Transport};
use crate::{Result, ServeError};

/// Tuning knobs for [`PriorServer::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling accepted connections.
    pub workers: usize,
    /// Per-connection read deadline.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline.
    pub write_timeout: Option<Duration>,
    /// Cap on a frame's declared body length.
    pub max_frame_len: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// A model reported back by an edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedModel {
    /// Task family the device belongs to.
    pub task_id: u64,
    /// Packed model parameters `[w…, b]`.
    pub params: Vec<f64>,
}

/// Everything the responder needs: the prior registry, collected model
/// reports, and server-side metrics.
#[derive(Debug, Default)]
pub struct ServerState {
    /// Pre-encoded `dro_edge::transfer` payloads keyed by task id.
    registry: RwLock<HashMap<u64, Arc<Vec<u8>>>>,
    /// Models reported by edge devices, in arrival order.
    reports: Mutex<Vec<ReportedModel>>,
    /// Server-side transfer metrics.
    metrics: ServeMetrics,
}

impl ServerState {
    /// Empty state: no priors registered, no reports.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the prior served for `task_id`.
    pub fn register_prior(&self, task_id: u64, prior: &MixturePrior) {
        self.register_payload(task_id, dro_edge::transfer::serialize_prior(prior));
    }

    /// Registers a raw, already-encoded transfer payload for `task_id`.
    pub fn register_payload(&self, task_id: u64, payload: Vec<u8>) {
        self.registry
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(task_id, Arc::new(payload));
    }

    /// Models reported so far, in arrival order.
    pub fn reports(&self) -> Vec<ReportedModel> {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Point-in-time server metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The protocol's request → response function.
    pub fn respond(&self, request: &Message) -> Message {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let response = match request {
            Message::Ping => Message::Ping,
            Message::PriorRequest { task_id } => {
                let payload = self
                    .registry
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(task_id)
                    .cloned();
                match payload {
                    Some(p) => Message::PriorResponse {
                        payload: p.as_ref().clone(),
                    },
                    None => Message::Error {
                        code: ErrorCode::UnknownTask,
                        detail: format!("no prior registered for task {task_id}"),
                    },
                }
            }
            Message::ModelReport { task_id, params } => {
                self.reports
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(ReportedModel {
                        task_id: *task_id,
                        params: params.clone(),
                    });
                Message::Ping
            }
            other => Message::Error {
                code: ErrorCode::Unexpected,
                detail: format!("server cannot handle a {} message", other.kind_name()),
            },
        };
        if matches!(response, Message::Error { .. }) {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Decodes one request frame, responds, and encodes the reply —
    /// updating byte counters and the latency histogram. Frame-level
    /// failures map onto protocol `Error` replies so the client always
    /// gets an answer it can classify.
    pub fn respond_bytes(&self, request_frame: &[u8]) -> Vec<u8> {
        let started = Instant::now();
        self.metrics
            .bytes_in
            .fetch_add(request_frame.len() as u64, Ordering::Relaxed);
        let response = match frame::decode(request_frame) {
            Ok(msg) => self.respond(&msg),
            Err(e) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                if matches!(e, ServeError::ChecksumMismatch { .. }) {
                    self.metrics
                        .checksum_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
                Message::Error {
                    code: match e {
                        ServeError::VersionMismatch { .. } => ErrorCode::Version,
                        _ => ErrorCode::Malformed,
                    },
                    detail: e.to_string(),
                }
            }
        };
        let bytes = frame::encode(&response);
        self.metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.metrics.latency.record(started.elapsed());
        bytes
    }
}

/// [`Responder`] running [`ServerState`] entirely in memory — the server
/// half of the fault-injection tests, with no sockets involved.
#[derive(Debug, Default)]
pub struct InMemoryServer {
    state: Arc<ServerState>,
}

impl InMemoryServer {
    /// An in-memory server over fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// An in-memory server sharing existing state.
    pub fn with_state(state: Arc<ServerState>) -> Self {
        InMemoryServer { state }
    }

    /// The shared state (registry, reports, metrics).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

impl Responder for InMemoryServer {
    fn respond(&self, request_frame: &[u8]) -> Vec<u8> {
        self.state.respond_bytes(request_frame)
    }
}

/// The TCP prior server; construct with [`PriorServer::bind`].
pub struct PriorServer;

impl PriorServer {
    /// Binds `addr` (use port 0 for an OS-assigned port), spawns the
    /// accept loop and worker pool, and returns a handle that owns them.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Io {
            op: "bind",
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServeError::Io {
            op: "local_addr",
            source,
        })?;
        let state = Arc::new(ServerState::new());
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let config = config.clone();
            threads.push(std::thread::spawn(move || loop {
                let stream = {
                    let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.recv()
                };
                match stream {
                    Ok(stream) => serve_connection(stream, &state, &config),
                    Err(_) => break, // channel closed: shutdown
                }
            }));
        }

        let accept_state = Arc::clone(&state);
        let accept_shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    accept_state
                        .metrics
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // `tx` drops here, releasing the workers from `recv()`.
        }));

        Ok(ServerHandle {
            addr: local_addr,
            state,
            shutdown,
            threads,
        })
    }
}

/// Runs one accepted connection to completion: frames in, frames out,
/// until the client hangs up, a deadline expires, or a fatal frame error.
fn serve_connection(stream: TcpStream, state: &ServerState, config: &ServeConfig) {
    let mut transport = match TcpTransport::with_deadlines(
        stream,
        config.read_timeout,
        config.write_timeout,
    ) {
        Ok(t) => t,
        Err(_) => return,
    };
    loop {
        // Raw frame bytes are re-read here rather than via `read_frame` so
        // that `respond_bytes` (shared with the in-memory server) is the
        // single place where decode errors map to protocol replies.
        let mut lenb = [0u8; frame::LEN_PREFIX];
        match transport.recv_exact_or_eof(&mut lenb) {
            Ok(false) => return, // clean hangup between requests
            Ok(true) => {}
            Err(_) => return,
        }
        let len = u32::from_le_bytes(lenb) as usize;
        if len > config.max_frame_len {
            let reply = frame::encode(&Message::Error {
                code: ErrorCode::Malformed,
                detail: format!(
                    "frame of {len} bytes exceeds the {}-byte cap",
                    config.max_frame_len
                ),
            });
            let _ = transport.send(&reply);
            return;
        }
        let mut request = vec![0u8; frame::LEN_PREFIX + len];
        request[..frame::LEN_PREFIX].copy_from_slice(&lenb);
        if transport.recv_exact(&mut request[frame::LEN_PREFIX..]).is_err() {
            return;
        }
        let reply = state.respond_bytes(&request);
        if transport.send(&reply).is_err() {
            return;
        }
    }
}

/// Owns a running [`PriorServer`]: its address, state, and threads.
/// Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state — also usable as an [`InMemoryServer`] backing.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Registers (or replaces) the prior served for `task_id`.
    pub fn register_prior(&self, task_id: u64, prior: &MixturePrior) {
        self.state.register_prior(task_id, prior);
    }

    /// Point-in-time server metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.metrics()
    }

    /// Models reported by edge devices so far.
    pub fn reports(&self) -> Vec<ReportedModel> {
        self.state.reports()
    }

    /// Signals shutdown and joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop out of its blocking `accept()`.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respond_covers_the_protocol() {
        let state = ServerState::new();
        state.register_payload(7, vec![1, 2, 3]);

        assert_eq!(state.respond(&Message::Ping), Message::Ping);
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 7 }),
            Message::PriorResponse {
                payload: vec![1, 2, 3]
            }
        );
        assert!(matches!(
            state.respond(&Message::PriorRequest { task_id: 8 }),
            Message::Error {
                code: ErrorCode::UnknownTask,
                ..
            }
        ));
        assert_eq!(
            state.respond(&Message::ModelReport {
                task_id: 7,
                params: vec![1.0, 2.0],
            }),
            Message::Ping
        );
        assert_eq!(
            state.reports(),
            vec![ReportedModel {
                task_id: 7,
                params: vec![1.0, 2.0],
            }]
        );
        assert!(matches!(
            state.respond(&Message::PriorResponse { payload: vec![] }),
            Message::Error {
                code: ErrorCode::Unexpected,
                ..
            }
        ));

        let m = state.metrics();
        assert_eq!(m.requests, 5);
        assert_eq!(m.responses_ok, 3);
        assert_eq!(m.errors, 2);
    }

    #[test]
    fn respond_bytes_reports_garbage_as_protocol_errors() {
        let state = ServerState::new();
        // A corrupted frame gets an Error reply, not a dropped connection.
        let mut bad = frame::encode(&Message::Ping);
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        // Corrupting the final CRC byte of an empty-payload frame…
        let reply = frame::decode(&state.respond_bytes(&bad)).unwrap();
        assert!(matches!(
            reply,
            Message::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        assert_eq!(state.metrics().checksum_failures, 1);

        // …and a valid-CRC future-version frame is told "Version".
        let mut v2 = frame::encode(&Message::Ping);
        v2[4] = 2;
        let crc = crate::crc32::Crc32::new().update(&[2, 0]).finalize();
        v2[6..10].copy_from_slice(&crc.to_le_bytes());
        let reply = frame::decode(&state.respond_bytes(&v2)).unwrap();
        assert!(matches!(
            reply,
            Message::Error {
                code: ErrorCode::Version,
                ..
            }
        ));
    }

    #[test]
    fn tcp_server_serves_and_shuts_down() {
        let mut handle = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        handle.state().register_payload(1, vec![9, 9, 9]);

        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(5)),
        )
        .unwrap();
        frame::write_frame(&mut t, &Message::PriorRequest { task_id: 1 }).unwrap();
        let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, Message::PriorResponse { payload: vec![9, 9, 9] });

        // Two requests on one connection: the loop keeps serving.
        frame::write_frame(&mut t, &Message::Ping).unwrap();
        let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, Message::Ping);
        drop(t);

        handle.shutdown();
        handle.shutdown(); // idempotent
        assert!(handle.metrics().requests >= 2);
    }
}
