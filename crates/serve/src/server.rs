//! The cloud-side prior server.
//!
//! [`PriorServer::bind`] starts a `TcpListener` accept loop feeding a fixed
//! pool of worker threads through a *bounded* `mpsc` channel; each worker
//! runs one connection at a time with per-connection read/write deadlines
//! (so one stalled reader can never wedge a worker forever). When the queue
//! is full the accept loop sheds the connection with a [`Message::Busy`]
//! reply instead of letting the backlog grow without bound, and a global
//! in-flight cap sheds individual requests the same way. The request →
//! response logic lives in [`ServerState::respond`], shared with
//! [`InMemoryServer`] so the fault-injection tests exercise byte-for-byte
//! the same responder as the real sockets. Workers catch handler panics —
//! a panic increments [`ServeMetrics::worker_panics`] and the worker goes
//! back to the queue, so the pool never shrinks — and every lock access
//! recovers from poisoning by inheriting the last good value (counted in
//! [`ServeMetrics::lock_recoveries`]). Shutdown is cooperative: a shared
//! `AtomicBool` plus a self-connection to wake the blocked `accept()`.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dre_bayes::MixturePrior;

use crate::frame::{self, ErrorCode, HealthStatus, Message, MessageRef, DEFAULT_MAX_FRAME_LEN};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::transport::{Responder, TcpTransport, Transport};
use crate::{Result, ServeError};

/// Byte budget for an `Error { detail }` string on the wire — a
/// pathological decode error can't balloon the reply frame past this.
pub const MAX_ERROR_DETAIL_BYTES: usize = 256;

/// Truncates an error detail to [`MAX_ERROR_DETAIL_BYTES`] on a char
/// boundary, marking the cut with an ellipsis that stays inside the
/// budget.
fn cap_error_detail(detail: String) -> String {
    if detail.len() <= MAX_ERROR_DETAIL_BYTES {
        return detail;
    }
    let mut end = MAX_ERROR_DETAIL_BYTES - '…'.len_utf8();
    while !detail.is_char_boundary(end) {
        end -= 1;
    }
    let mut capped = detail;
    capped.truncate(end);
    capped.push('…');
    capped
}

/// Tuning knobs for [`PriorServer::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling accepted connections.
    pub workers: usize,
    /// Per-connection read deadline.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline.
    pub write_timeout: Option<Duration>,
    /// Cap on a frame's declared body length.
    pub max_frame_len: usize,
    /// Accepted connections that may wait for a worker before the accept
    /// loop starts shedding with `Busy` replies.
    pub queue_bound: usize,
    /// Global cap on requests being served at once; requests beyond it get
    /// a `Busy` reply instead of a response.
    pub max_in_flight: usize,
    /// Requests served on one connection before the server closes it — a
    /// fairness valve so a single chatty client cannot hold a worker
    /// forever (clients reconnect transparently on the next attempt).
    pub max_requests_per_conn: usize,
    /// Backoff hint carried inside `Busy` replies.
    pub busy_retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            queue_bound: 64,
            max_in_flight: 64,
            max_requests_per_conn: 1024,
            busy_retry_after: Duration::from_millis(25),
        }
    }
}

/// A model reported back by an edge device.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedModel {
    /// Task family the device belongs to.
    pub task_id: u64,
    /// Packed model parameters `[w…, b]`.
    pub params: Vec<f64>,
}

/// One registered prior: the raw transfer payload plus the fully encoded
/// `PriorResponse` frame the hot path serves, stamped with the registry
/// generation that built it. The frame (length prefix, CRC and all) is
/// encoded exactly once per registration; re-registering a task bumps the
/// generation and replaces the entry wholesale, so every in-flight
/// response keeps the frame it started with.
#[derive(Debug, Clone)]
pub struct PriorEntry {
    /// The raw `dro_edge::transfer` payload.
    pub payload: Arc<Vec<u8>>,
    /// The complete pre-encoded `PriorResponse` frame.
    pub frame: Arc<[u8]>,
    /// Registry generation at encode time (monotone across all tasks).
    pub generation: u64,
}

/// A response frame on its way out: either freshly encoded for this
/// request, or a shared reference into the pre-encoded prior-frame cache
/// — the cached case performs no payload clone, no re-encode, and no CRC
/// recompute.
#[derive(Debug, Clone)]
pub enum ResponseBytes {
    /// Encoded for this request.
    Owned(Vec<u8>),
    /// Served from the generation-stamped frame cache.
    Cached(Arc<[u8]>),
}

impl ResponseBytes {
    /// Whether this reply came from the pre-encoded cache.
    pub fn is_cached(&self) -> bool {
        matches!(self, ResponseBytes::Cached(_))
    }

    /// Moves the bytes into a plain vector (copies only the cached case).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            ResponseBytes::Owned(v) => v,
            ResponseBytes::Cached(a) => a.to_vec(),
        }
    }
}

impl std::ops::Deref for ResponseBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            ResponseBytes::Owned(v) => v,
            ResponseBytes::Cached(a) => a,
        }
    }
}

impl AsRef<[u8]> for ResponseBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Everything the responder needs: the prior registry, collected model
/// reports, load gauges, and server-side metrics.
#[derive(Debug)]
pub struct ServerState {
    /// Registered priors (payload + pre-encoded response frame) by task id.
    registry: RwLock<HashMap<u64, PriorEntry>>,
    /// Monotone registry generation; bumped on every registration, stamped
    /// into the frame cache entries it builds.
    generation: AtomicU64,
    /// Models reported by edge devices, in arrival order.
    reports: Mutex<Vec<ReportedModel>>,
    /// Server-side transfer metrics.
    metrics: ServeMetrics,
    /// Connections accepted but not yet picked up by a worker.
    pending: AtomicU64,
    /// Requests currently inside `respond_bytes` across all workers.
    in_flight: AtomicU64,
    /// Chaos hook: a `PriorRequest` for this task id panics inside the
    /// handler. `u64::MAX` disables the hook.
    panic_on_task: AtomicU64,
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState {
            registry: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
            metrics: ServeMetrics::new(),
            pending: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            panic_on_task: AtomicU64::new(u64::MAX),
        }
    }
}

impl ServerState {
    /// Empty state: no priors registered, no reports.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the registry, recovering from poisoning: a panic
    /// mid-*write* can at worst have replaced one task's payload `Arc`
    /// (`HashMap::insert` is not observable half-done through these
    /// guards), so inheriting the map is safe and beats refusing service.
    fn registry_read(&self) -> RwLockReadGuard<'_, HashMap<u64, PriorEntry>> {
        self.registry.read().unwrap_or_else(|poisoned| {
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Write access to the registry with the same poison-recovery policy.
    fn registry_write(&self) -> RwLockWriteGuard<'_, HashMap<u64, PriorEntry>> {
        self.registry.write().unwrap_or_else(|poisoned| {
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// The reports log, recovering from poisoning (a `Vec::push` either
    /// happened or did not — both leave a valid log).
    fn reports_lock(&self) -> MutexGuard<'_, Vec<ReportedModel>> {
        self.reports.lock().unwrap_or_else(|poisoned| {
            self.metrics.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Registers (or replaces) the prior served for `task_id`.
    pub fn register_prior(&self, task_id: u64, prior: &MixturePrior) {
        self.register_payload(task_id, dro_edge::transfer::serialize_prior(prior));
    }

    /// Registers a raw, already-encoded transfer payload for `task_id`:
    /// bumps the registry generation, encodes the complete `PriorResponse`
    /// frame once, and installs both — every later hit is served from that
    /// frame without re-encoding.
    pub fn register_payload(&self, task_id: u64, payload: Vec<u8>) {
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        // Encode outside the lock: registration pays the frame build, the
        // serving path never does.
        let frame: Arc<[u8]> = frame::encode_prior_response(&payload).into();
        self.metrics.prior_cache_builds.fetch_add(1, Ordering::Relaxed);
        self.registry_write().insert(
            task_id,
            PriorEntry {
                payload: Arc::new(payload),
                frame,
                generation,
            },
        );
    }

    /// The current registry generation (0 before any registration).
    pub fn cache_generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// The cached entry for `task_id`, if registered — tests use this to
    /// prove cached frames are bit-identical to fresh encodes.
    pub fn prior_entry(&self, task_id: u64) -> Option<PriorEntry> {
        self.registry_read().get(&task_id).cloned()
    }

    /// Models reported so far, in arrival order.
    pub fn reports(&self) -> Vec<ReportedModel> {
        self.reports_lock().clone()
    }

    /// Point-in-time server metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Current load and resilience gauges, as served to `Health` requests.
    pub fn health_status(&self) -> HealthStatus {
        HealthStatus {
            queue_depth: self.pending.load(Ordering::Relaxed) as u32,
            in_flight: self.in_flight.load(Ordering::Relaxed) as u32,
            shed_connections: self.metrics.shed_connections.load(Ordering::Relaxed),
            worker_panics: self.metrics.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Arms the chaos hook: the next `PriorRequest` for `task_id` panics
    /// inside the handler (exercising worker panic recovery and lock
    /// poisoning). Pass `u64::MAX` to disarm.
    pub fn chaos_panic_on_task(&self, task_id: u64) {
        self.panic_on_task.store(task_id, Ordering::SeqCst);
    }

    /// The protocol's request → response function.
    pub fn respond(&self, request: &Message) -> Message {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let response = match request {
            Message::Ping => Message::Ping,
            Message::Health => Message::HealthReport(self.health_status()),
            Message::PriorRequest { task_id } => {
                if *task_id == self.panic_on_task.load(Ordering::SeqCst) {
                    // Poison the registry on the way down so recovery of
                    // both the worker and the lock is exercised together.
                    let _guard = self.registry_write();
                    panic!("chaos hook: injected handler panic for task {task_id}");
                }
                let payload = self
                    .registry_read()
                    .get(task_id)
                    .map(|e| Arc::clone(&e.payload));
                match payload {
                    Some(p) => Message::PriorResponse {
                        payload: p.as_ref().clone(),
                    },
                    None => Message::Error {
                        code: ErrorCode::UnknownTask,
                        detail: format!("no prior registered for task {task_id}"),
                    },
                }
            }
            Message::ModelReport { task_id, params } => {
                self.reports_lock().push(ReportedModel {
                    task_id: *task_id,
                    params: params.clone(),
                });
                Message::Ping
            }
            other => Message::Error {
                code: ErrorCode::Unexpected,
                detail: format!("server cannot handle a {} message", other.kind_name()),
            },
        };
        if matches!(response, Message::Error { .. }) {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Decodes one request frame, responds, and encodes the reply —
    /// updating byte counters and the latency histogram. Frame-level
    /// failures map onto protocol `Error` replies so the client always
    /// gets an answer it can classify. A `PriorRequest` hit is the
    /// zero-copy hot path: a borrowing decode ([`frame::decode_ref`]), a
    /// registry lookup, and a shared reference to the pre-encoded frame —
    /// no payload clone, no re-encode, no CRC recompute (counted in
    /// [`ServeMetrics::prior_cache_hits`]).
    pub fn respond_bytes(&self, request_frame: &[u8]) -> ResponseBytes {
        let started = Instant::now();
        self.metrics
            .bytes_in
            .fetch_add(request_frame.len() as u64, Ordering::Relaxed);
        let reply = match frame::decode_ref(request_frame) {
            Ok(MessageRef::PriorRequest { task_id }) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                if task_id == self.panic_on_task.load(Ordering::SeqCst) {
                    // Poison the registry on the way down so recovery of
                    // both the worker and the lock is exercised together.
                    let _guard = self.registry_write();
                    panic!("chaos hook: injected handler panic for task {task_id}");
                }
                let cached = self
                    .registry_read()
                    .get(&task_id)
                    .map(|e| Arc::clone(&e.frame));
                match cached {
                    Some(frame_bytes) => {
                        self.metrics.prior_cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
                        ResponseBytes::Cached(frame_bytes)
                    }
                    None => {
                        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        ResponseBytes::Owned(frame::encode(&Message::Error {
                            code: ErrorCode::UnknownTask,
                            detail: format!("no prior registered for task {task_id}"),
                        }))
                    }
                }
            }
            Ok(other) => ResponseBytes::Owned(frame::encode(&self.respond(&other.to_owned()))),
            Err(e) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                if matches!(e, ServeError::ChecksumMismatch { .. }) {
                    self.metrics
                        .checksum_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
                ResponseBytes::Owned(frame::encode(&Message::Error {
                    code: match e {
                        ServeError::VersionMismatch { .. } => ErrorCode::Version,
                        _ => ErrorCode::Malformed,
                    },
                    detail: cap_error_detail(e.to_string()),
                }))
            }
        };
        self.metrics
            .bytes_out
            .fetch_add(reply.len() as u64, Ordering::Relaxed);
        self.metrics.latency.record(started.elapsed());
        reply
    }

    /// Encodes a `Busy` reply for a request that is being shed, updating
    /// the same counters `respond_bytes` would — including the latency
    /// histogram, so shed requests stay visible in the latency profile.
    pub fn busy_bytes(&self, request_len: usize, retry_after: Duration) -> Vec<u8> {
        let started = Instant::now();
        self.metrics
            .bytes_in
            .fetch_add(request_len as u64, Ordering::Relaxed);
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.busy.fetch_add(1, Ordering::Relaxed);
        let bytes = frame::encode(&Message::Busy {
            retry_after_ms: retry_after.as_millis().min(u32::MAX as u128) as u32,
        });
        self.metrics
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.metrics.latency.record(started.elapsed());
        bytes
    }
}

/// [`Responder`] running [`ServerState`] entirely in memory — the server
/// half of the fault-injection tests, with no sockets involved.
#[derive(Debug, Default)]
pub struct InMemoryServer {
    state: Arc<ServerState>,
}

impl InMemoryServer {
    /// An in-memory server over fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// An in-memory server sharing existing state.
    pub fn with_state(state: Arc<ServerState>) -> Self {
        InMemoryServer { state }
    }

    /// The shared state (registry, reports, metrics).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

impl Responder for InMemoryServer {
    fn respond(&self, request_frame: &[u8]) -> Vec<u8> {
        self.state.respond_bytes(request_frame).into_vec()
    }
}

/// The TCP prior server; construct with [`PriorServer::bind`].
pub struct PriorServer;

impl PriorServer {
    /// Binds `addr` (use port 0 for an OS-assigned port), spawns the
    /// accept loop and worker pool, and returns a handle that owns them.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Io {
            op: "bind",
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServeError::Io {
            op: "local_addr",
            source,
        })?;
        let state = Arc::new(ServerState::new());
        let shutdown = Arc::new(AtomicBool::new(false));

        // A *bounded* queue between accept and the workers: when it fills,
        // the accept loop sheds with `Busy` instead of queueing unboundedly.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_bound.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let config = config.clone();
            threads.push(std::thread::spawn(move || loop {
                let stream = {
                    let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.recv()
                };
                match stream {
                    Ok(stream) => {
                        state.pending.fetch_sub(1, Ordering::Relaxed);
                        // A panicking handler must not take the worker with
                        // it: catch, count, and go back to the queue — the
                        // pool never shrinks.
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || serve_connection(stream, &state, &config),
                        ));
                        if outcome.is_err() {
                            state.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => break, // channel closed: shutdown
                }
            }));
        }

        let accept_state = Arc::clone(&state);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_config = config.clone();
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // Replies must not wait on Nagle behind an unacked
                    // previous reply when the connection is kept alive.
                    let _ = stream.set_nodelay(true);
                    accept_state
                        .metrics
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    accept_state.pending.fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(stream)) => {
                            accept_state.pending.fetch_sub(1, Ordering::Relaxed);
                            accept_state
                                .metrics
                                .shed_connections
                                .fetch_add(1, Ordering::Relaxed);
                            shed_connection(stream, &accept_state, &accept_config);
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
            }
            // `tx` drops here, releasing the workers from `recv()`.
        }));

        Ok(ServerHandle {
            addr: local_addr,
            state,
            shutdown,
            threads,
        })
    }
}

/// Sheds one connection the accept loop could not queue: drains the
/// request that is (probably) already in flight, answers `Busy`, and hangs
/// up. Short deadlines keep a slow client from stalling the accept loop.
fn shed_connection(stream: TcpStream, state: &ServerState, config: &ServeConfig) {
    let deadline = Some(
        config
            .write_timeout
            .unwrap_or(Duration::from_millis(250))
            .min(Duration::from_millis(250)),
    );
    let mut transport = match TcpTransport::with_deadlines(stream, deadline, deadline) {
        Ok(t) => t,
        Err(_) => return,
    };
    // Read the pending request so closing the socket after the reply does
    // not reset it out from under the client; tolerate failures — the
    // `Busy` write below is best-effort either way.
    let mut request_len = 0usize;
    let mut lenb = [0u8; frame::LEN_PREFIX];
    if matches!(transport.recv_exact_or_eof(&mut lenb), Ok(true)) {
        let len = u32::from_le_bytes(lenb) as usize;
        if len <= config.max_frame_len {
            let mut body = vec![0u8; len];
            if transport.recv_exact(&mut body).is_ok() {
                request_len = frame::LEN_PREFIX + len;
            }
        }
    }
    let reply = state.busy_bytes(request_len, config.busy_retry_after);
    let _ = transport.send(&reply);
}

/// Runs one accepted connection to completion: frames in, frames out,
/// until the client hangs up, a deadline expires, a fatal frame error, or
/// the per-connection request cap.
fn serve_connection(stream: TcpStream, state: &ServerState, config: &ServeConfig) {
    let mut transport = match TcpTransport::with_deadlines(
        stream,
        config.read_timeout,
        config.write_timeout,
    ) {
        Ok(t) => t,
        Err(_) => return,
    };
    let mut served = 0usize;
    // One request buffer per connection, reused across requests: on a
    // keep-alive stream the steady state reads into retained capacity, and
    // the greedy first read grabs the whole frame in one syscall. Raw
    // frame bytes are read here rather than via `read_frame` so that
    // `respond_bytes` (shared with the in-memory server) is the single
    // place where decode errors map to protocol replies.
    let mut request: Vec<u8> = Vec::new();
    // Bytes a greedy read grabbed past the end of the previous frame (a
    // pipelining client); consumed before touching the socket again.
    let mut carry: Vec<u8> = Vec::new();
    while served < config.max_requests_per_conn.max(1) {
        let mut got = carry.len();
        if request.len() < got {
            request.resize(got, 0);
        }
        request[..got].copy_from_slice(&carry);
        carry.clear();
        let guess = request
            .capacity()
            .clamp(
                frame::LEN_PREFIX + frame::BODY_HEADER,
                frame::LEN_PREFIX + config.max_frame_len,
            )
            .max(got);
        // Grow-only: every byte up to the frame's end is overwritten by
        // the reads below, and the buffer is truncated before use.
        if request.len() < guess {
            request.resize(guess, 0);
        }
        if got == 0 {
            match transport.recv_some_or_eof(&mut request[..]) {
                Ok(0) => return, // clean hangup between requests
                Ok(n) => got = n,
                Err(_) => return,
            }
        }
        while got < frame::LEN_PREFIX {
            match transport.recv_some(&mut request[got..]) {
                Ok(n) => got += n,
                Err(_) => return,
            }
        }
        let len = u32::from_le_bytes([request[0], request[1], request[2], request[3]]) as usize;
        if len > config.max_frame_len {
            let reply = frame::encode(&Message::Error {
                code: ErrorCode::Malformed,
                detail: format!(
                    "frame of {len} bytes exceeds the {}-byte cap",
                    config.max_frame_len
                ),
            });
            let _ = transport.send(&reply);
            return;
        }
        let total = frame::LEN_PREFIX + len;
        if got > total {
            carry.extend_from_slice(&request[total..got]);
        } else {
            if request.len() < total {
                request.resize(total, 0);
            }
            while got < total {
                match transport.recv_some(&mut request[got..total]) {
                    Ok(n) => got += n,
                    Err(_) => return,
                }
            }
        }
        request.truncate(total);
        // Global in-flight cap: requests beyond it are shed with `Busy`
        // rather than queued behind the worker pool. The decrement lives in
        // a drop guard so the gauge survives a panicking handler.
        struct InFlight<'a>(&'a AtomicU64);
        impl Drop for InFlight<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let in_flight = state.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        let _gauge = InFlight(&state.in_flight);
        let reply = if in_flight as usize > config.max_in_flight.max(1) {
            ResponseBytes::Owned(state.busy_bytes(request.len(), config.busy_retry_after))
        } else {
            state.respond_bytes(&request)
        };
        drop(_gauge);
        if transport.send(&reply).is_err() {
            return;
        }
        served += 1;
    }
}

/// Owns a running [`PriorServer`]: its address, state, and threads.
/// Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state — also usable as an [`InMemoryServer`] backing.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Registers (or replaces) the prior served for `task_id`.
    pub fn register_prior(&self, task_id: u64, prior: &MixturePrior) {
        self.state.register_prior(task_id, prior);
    }

    /// Point-in-time server metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.state.metrics()
    }

    /// Models reported by edge devices so far.
    pub fn reports(&self) -> Vec<ReportedModel> {
        self.state.reports()
    }

    /// Signals shutdown and joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop out of its blocking `accept()`.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respond_covers_the_protocol() {
        let state = ServerState::new();
        state.register_payload(7, vec![1, 2, 3]);

        assert_eq!(state.respond(&Message::Ping), Message::Ping);
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 7 }),
            Message::PriorResponse {
                payload: vec![1, 2, 3]
            }
        );
        assert!(matches!(
            state.respond(&Message::PriorRequest { task_id: 8 }),
            Message::Error {
                code: ErrorCode::UnknownTask,
                ..
            }
        ));
        assert_eq!(
            state.respond(&Message::ModelReport {
                task_id: 7,
                params: vec![1.0, 2.0],
            }),
            Message::Ping
        );
        assert_eq!(
            state.reports(),
            vec![ReportedModel {
                task_id: 7,
                params: vec![1.0, 2.0],
            }]
        );
        assert!(matches!(
            state.respond(&Message::PriorResponse { payload: vec![] }),
            Message::Error {
                code: ErrorCode::Unexpected,
                ..
            }
        ));

        let m = state.metrics();
        assert_eq!(m.requests, 5);
        assert_eq!(m.responses_ok, 3);
        assert_eq!(m.errors, 2);
    }

    #[test]
    fn respond_bytes_reports_garbage_as_protocol_errors() {
        let state = ServerState::new();
        // A corrupted frame gets an Error reply, not a dropped connection.
        let mut bad = frame::encode(&Message::Ping);
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        // Corrupting the final CRC byte of an empty-payload frame…
        let reply = frame::decode(&state.respond_bytes(&bad)).unwrap();
        assert!(matches!(
            reply,
            Message::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        assert_eq!(state.metrics().checksum_failures, 1);

        // …and a valid-CRC future-version frame is told "Version".
        let mut v2 = frame::encode(&Message::Ping);
        v2[4] = 2;
        let crc = crate::crc32::Crc32::new().update(&[2, 0]).finalize();
        v2[6..10].copy_from_slice(&crc.to_le_bytes());
        let reply = frame::decode(&state.respond_bytes(&v2)).unwrap();
        assert!(matches!(
            reply,
            Message::Error {
                code: ErrorCode::Version,
                ..
            }
        ));
    }

    #[test]
    fn tcp_server_serves_and_shuts_down() {
        let mut handle = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        handle.state().register_payload(1, vec![9, 9, 9]);

        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(5)),
        )
        .unwrap();
        frame::write_frame(&mut t, &Message::PriorRequest { task_id: 1 }).unwrap();
        let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, Message::PriorResponse { payload: vec![9, 9, 9] });

        // Two requests on one connection: the loop keeps serving.
        frame::write_frame(&mut t, &Message::Ping).unwrap();
        let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, Message::Ping);
        drop(t);

        handle.shutdown();
        handle.shutdown(); // idempotent
        assert!(handle.metrics().requests >= 2);
    }

    #[test]
    fn health_reports_load_gauges() {
        let state = ServerState::new();
        match state.respond(&Message::Health) {
            Message::HealthReport(h) => {
                assert_eq!(h, HealthStatus::default());
            }
            other => panic!("expected HealthReport, got {}", other.kind_name()),
        }
        // Health counts as a served request, not an error.
        let m = state.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.responses_ok, 1);
        assert_eq!(m.errors, 0);
    }

    #[test]
    fn busy_bytes_counts_and_encodes_the_hint() {
        let state = ServerState::new();
        let reply = state.busy_bytes(10, Duration::from_millis(40));
        assert_eq!(
            frame::decode(&reply).unwrap(),
            Message::Busy { retry_after_ms: 40 }
        );
        let m = state.metrics();
        assert_eq!(m.busy, 1);
        assert_eq!(m.requests, 1);
        assert_eq!(m.bytes_in, 10);
        assert_eq!(m.bytes_out, reply.len() as u64);
        // Shed requests land in the latency histogram like any other.
        assert_eq!(m.latency_count(), 1);
    }

    #[test]
    fn error_detail_is_capped_on_a_char_boundary() {
        // Under budget: untouched.
        let short = "x".repeat(MAX_ERROR_DETAIL_BYTES);
        assert_eq!(cap_error_detail(short.clone()), short);
        // Over budget: truncated to the budget, ellipsis included.
        let long = "x".repeat(MAX_ERROR_DETAIL_BYTES + 100);
        let capped = cap_error_detail(long);
        assert_eq!(capped.len(), MAX_ERROR_DETAIL_BYTES);
        assert!(capped.ends_with('…'));
        // Multi-byte chars never get split: 'é' is 2 bytes, so the byte
        // budget lands mid-char and the cut backs up to a boundary.
        let multi = "é".repeat(MAX_ERROR_DETAIL_BYTES);
        let capped = cap_error_detail(multi);
        assert!(capped.len() <= MAX_ERROR_DETAIL_BYTES);
        assert!(capped.ends_with('…'));
        assert!(String::from_utf8(capped.into_bytes()).is_ok());
    }

    #[test]
    fn prior_hits_serve_the_cached_frame() {
        let state = ServerState::new();
        state.register_payload(7, vec![1, 2, 3]);
        assert_eq!(state.cache_generation(), 1);
        assert_eq!(state.metrics().prior_cache_builds, 1);

        let request = frame::encode(&Message::PriorRequest { task_id: 7 });
        let reply = state.respond_bytes(&request);
        assert!(reply.is_cached(), "prior hit must come from the cache");
        // The cached frame is bit-identical to a fresh encode.
        assert_eq!(
            &reply[..],
            &frame::encode(&Message::PriorResponse {
                payload: vec![1, 2, 3]
            })[..]
        );
        let m = state.metrics();
        assert_eq!(m.prior_cache_hits, 1);
        assert_eq!(m.responses_ok, 1);

        // Re-registering bumps the generation and swaps the frame.
        state.register_payload(7, vec![9, 9]);
        assert_eq!(state.cache_generation(), 2);
        let entry = state.prior_entry(7).unwrap();
        assert_eq!(entry.generation, 2);
        assert_eq!(
            &entry.frame[..],
            &frame::encode(&Message::PriorResponse {
                payload: vec![9, 9]
            })[..]
        );
        // A miss is an owned Error frame, not a cache entry.
        let miss = state.respond_bytes(&frame::encode(&Message::PriorRequest { task_id: 404 }));
        assert!(!miss.is_cached());
    }

    #[test]
    fn poisoned_registry_is_recovered_not_fatal() {
        let state = Arc::new(ServerState::new());
        state.register_payload(1, vec![7]);
        // Poison the registry by panicking while holding the write lock.
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.registry.write().unwrap();
            panic!("poison the registry");
        })
        .join();
        assert!(state.registry.is_poisoned());
        // Reads and writes still work, inheriting the last good map…
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 1 }),
            Message::PriorResponse { payload: vec![7] }
        );
        state.register_payload(2, vec![8]);
        assert_eq!(
            state.respond(&Message::PriorRequest { task_id: 2 }),
            Message::PriorResponse { payload: vec![8] }
        );
        // …and every recovery is counted.
        assert!(state.metrics().lock_recoveries >= 3);
    }

    #[test]
    fn worker_panic_is_counted_and_the_pool_survives() {
        let config = ServeConfig {
            workers: 1, // one worker: if it died, the follow-up would hang
            read_timeout: Some(Duration::from_secs(2)),
            ..ServeConfig::default()
        };
        let mut handle = PriorServer::bind("127.0.0.1:0", config).unwrap();
        handle.state().register_payload(1, vec![5]);
        handle.state().chaos_panic_on_task(13);

        let mut client = crate::client::PriorClient::new(
            crate::transport::TcpConnector::new(handle.addr()),
            crate::client::RetryPolicy::no_retries(),
        );
        // The poisoned request dies mid-connection: the client sees a
        // transient transport error (here wrapped by the exhausted
        // single-attempt budget), never a protocol-level failure.
        let err = client.fetch_prior_payload(13).unwrap_err();
        match err {
            ServeError::RetriesExhausted { last, .. } => {
                assert!(last.is_retryable(), "worker panic must read as transient")
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        // The single worker was respawned-in-place: it still serves.
        assert_eq!(client.fetch_prior_payload(1).unwrap(), vec![5]);
        let m = handle.metrics();
        assert_eq!(m.worker_panics, 1);
        assert!(m.lock_recoveries >= 1, "poisoned registry was inherited");
        // Health reflects the panic and a drained in-flight gauge.
        let h = client.health().unwrap();
        assert_eq!(h.worker_panics, 1);
        // The health request counts itself; a leaked gauge would read 2+.
        assert_eq!(h.in_flight, 1, "in-flight gauge must survive the panic");
        handle.shutdown();
    }

    #[test]
    fn per_connection_request_cap_closes_the_stream() {
        let config = ServeConfig {
            max_requests_per_conn: 2,
            ..ServeConfig::default()
        };
        let mut handle = PriorServer::bind("127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(2)),
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        for _ in 0..2 {
            frame::write_frame(&mut t, &Message::Ping).unwrap();
            let (reply, _) = frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).unwrap();
            assert_eq!(reply, Message::Ping);
        }
        // Third request on the same connection: the server has hung up.
        let _ = frame::write_frame(&mut t, &Message::Ping);
        assert!(frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).is_err());
        // A fresh connection is served normally.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut t = TcpTransport::with_deadlines(
            stream,
            Some(Duration::from_secs(2)),
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        frame::write_frame(&mut t, &Message::Ping).unwrap();
        assert!(frame::read_frame(&mut t, DEFAULT_MAX_FRAME_LEN).is_ok());
        handle.shutdown();
    }
}
