//! The length-prefixed, checksummed wire protocol.
//!
//! Every message travels as one frame:
//!
//! ```text
//! len      u32 LE   body length in bytes (everything after this field)
//! ver      u8       frame version (1)
//! kind     u8       0 Ping · 1 PriorRequest · 2 PriorResponse · 3 ModelReport
//!                   · 4 Error · 5 Busy · 6 Health · 7 HealthReport
//!                   · 8 ShardMapRequest · 9 ShardMapResponse · 10 ReportAck
//! crc      u32 LE   CRC-32 (IEEE) over ver ‖ kind ‖ payload
//! payload  bytes    kind-specific
//! ```
//!
//! Payload encodings (all little-endian):
//!
//! * `Ping` — empty.
//! * `PriorRequest` — `task_id: u64`.
//! * `PriorResponse` — the existing [`dro_edge::transfer`] payload,
//!   byte-for-byte unchanged inside the frame.
//! * `ModelReport` — `task_id: u64`, `device_id: u64`, `seq: u64`,
//!   `count: u32`, `count × f64` packed parameters. The device id names
//!   the reporting edge device; `seq` is that device's monotone report
//!   sequence number, letting the server drop replays and duplicates.
//! * `Error` — `code: u8`, then UTF-8 detail text to the end of the frame.
//! * `Busy` — `retry_after_ms: u32`: the server shed this request under
//!   load; the client should back off at least that long before retrying.
//! * `Health` — empty; asks the server for a [`HealthStatus`] snapshot.
//! * `HealthReport` — `queue_depth: u32`, `in_flight: u32`, `shed: u64`,
//!   `worker_panics: u64`.
//! * `ShardMapRequest` — empty; asks any shard for the current
//!   [`ShardMapWire`].
//! * `ShardMapResponse` — `epoch: u64`, `seed: u64`, `replication: u32`,
//!   `virtual_nodes: u32`, `count: u32`, then `count ×` fixed 19-byte
//!   shard addresses (`family: u8` = 4 or 6, 16 address bytes — v4 octets
//!   zero-padded — then `port: u16`). Fixed-width addresses keep the frame
//!   length a `const fn` of the shard count.
//! * `ReportAck` — `accepted: u8` (1 accepted, 0 rejected); the
//!   acknowledgement for `ModelReport`. Rejection means the report was
//!   dropped before the inbox (replay, rate cap, or overflow shed) — a
//!   protocol-level success, not an outage, so it spends no retry budget
//!   and trips no breaker.
//!
//! Decoding checks the CRC *before* the version byte so that a corrupted
//! version byte is classified as retryable corruption, not a fatal version
//! mismatch; a genuine version-2 frame carries a valid CRC and is rejected
//! as [`ServeError::VersionMismatch`].

use crate::crc32::Crc32;
use crate::transport::Transport;
use crate::{Result, ServeError};

/// The single frame version this build reads and writes.
pub const FRAME_VERSION: u8 = 1;

/// Size of the length prefix.
pub const LEN_PREFIX: usize = 4;

/// Fixed body bytes before the payload: version (1) + kind (1) + crc (4).
pub const BODY_HEADER: usize = 6;

/// Total framing overhead added around a payload.
pub const FRAME_OVERHEAD: usize = LEN_PREFIX + BODY_HEADER;

/// Default cap on a frame's declared body length (16 MiB) — far above any
/// realistic prior, low enough to bound a hostile peer's allocation.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// Exact wire size of a `PriorRequest` frame.
pub const fn prior_request_frame_len() -> usize {
    FRAME_OVERHEAD + 8
}

/// Exact wire size of a `PriorResponse` frame carrying a `k`-component,
/// `d`-dimensional prior — frame overhead plus the unchanged
/// [`dro_edge::transfer`] payload ([`dro_edge::transfer::encoded_len`]).
pub const fn prior_response_frame_len(k: usize, d: usize) -> usize {
    FRAME_OVERHEAD + dro_edge::transfer::encoded_len(k, d)
}

/// Exact wire size of a `ModelReport` frame for a packed `p`-parameter
/// model.
pub const fn model_report_frame_len(p: usize) -> usize {
    FRAME_OVERHEAD + 8 + 8 + 8 + 4 + 8 * p
}

/// Exact wire size of a `ReportAck` frame.
pub const fn report_ack_frame_len() -> usize {
    FRAME_OVERHEAD + 1
}

/// Exact wire size of a `Ping` frame.
pub const fn ping_frame_len() -> usize {
    FRAME_OVERHEAD
}

/// Exact wire size of a `Busy` frame.
pub const fn busy_frame_len() -> usize {
    FRAME_OVERHEAD + 4
}

/// Exact wire size of a `Health` request frame.
pub const fn health_frame_len() -> usize {
    FRAME_OVERHEAD
}

/// Exact wire size of a `HealthReport` frame.
pub const fn health_report_frame_len() -> usize {
    FRAME_OVERHEAD + 4 + 4 + 8 + 8
}

/// Bytes of one fixed-width shard address inside a `ShardMapResponse`:
/// family byte + 16 address bytes + port.
pub const SHARD_ADDR_WIRE_LEN: usize = 1 + 16 + 2;

/// Exact wire size of a `ShardMapRequest` frame.
pub const fn shard_map_request_frame_len() -> usize {
    FRAME_OVERHEAD
}

/// Exact wire size of a `ShardMapResponse` frame carrying `n` shard
/// addresses.
pub const fn shard_map_response_frame_len(n: usize) -> usize {
    FRAME_OVERHEAD + 8 + 8 + 4 + 4 + 4 + SHARD_ADDR_WIRE_LEN * n
}

/// Machine-readable reason inside a protocol `Error` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The requested task id has no registered prior.
    UnknownTask = 1,
    /// The message kind was valid but not acceptable in this direction
    /// (e.g. the server received a `PriorResponse`).
    Unexpected = 2,
    /// The request frame failed CRC, length, or grammar checks.
    Malformed = 3,
    /// The request frame carried an unsupported version byte.
    Version = 4,
    /// The server failed internally while producing a response.
    Internal = 5,
    /// The requested task id is owned by a different shard — a redirect,
    /// not a lookup failure. The client should refresh its shard map and
    /// retry against the owner.
    Misrouted = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::UnknownTask),
            2 => Some(ErrorCode::Unexpected),
            3 => Some(ErrorCode::Malformed),
            4 => Some(ErrorCode::Version),
            5 => Some(ErrorCode::Internal),
            6 => Some(ErrorCode::Misrouted),
            _ => None,
        }
    }
}

/// The shard map as carried by [`Message::ShardMapResponse`]: everything a
/// client needs to rebuild the exact consistent-hash ring the plane routes
/// with (same seed, same virtual-node count) plus the replica set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMapWire {
    /// Monotone map generation; bumped on every add/remove/rebalance.
    pub epoch: u64,
    /// Seed of the ring's stable hash.
    pub seed: u64,
    /// Replicas per task id (clamped to the shard count).
    pub replication: u32,
    /// Virtual nodes per shard on the ring.
    pub virtual_nodes: u32,
    /// Shard listen addresses, in shard-index order.
    pub shards: Vec<std::net::SocketAddr>,
}

fn write_shard_addr(out: &mut Vec<u8>, addr: &std::net::SocketAddr) {
    match addr.ip() {
        std::net::IpAddr::V4(ip) => {
            out.push(4);
            out.extend_from_slice(&ip.octets());
            out.extend_from_slice(&[0u8; 12]);
        }
        std::net::IpAddr::V6(ip) => {
            out.push(6);
            out.extend_from_slice(&ip.octets());
        }
    }
    out.extend_from_slice(&addr.port().to_le_bytes());
}

fn read_shard_addr(raw: &[u8]) -> Result<std::net::SocketAddr> {
    debug_assert_eq!(raw.len(), SHARD_ADDR_WIRE_LEN);
    let port = u16::from_le_bytes(raw[17..19].try_into().expect("2 bytes"));
    let ip = match raw[0] {
        4 => {
            if raw[5..17].iter().any(|&b| b != 0) {
                return Err(ServeError::MalformedFrame {
                    reason: "ShardMapResponse v4 address padding is nonzero",
                });
            }
            std::net::IpAddr::V4(std::net::Ipv4Addr::new(raw[1], raw[2], raw[3], raw[4]))
        }
        6 => {
            let octets: [u8; 16] = raw[1..17].try_into().expect("16 bytes");
            std::net::IpAddr::V6(std::net::Ipv6Addr::from(octets))
        }
        _ => {
            return Err(ServeError::MalformedFrame {
                reason: "ShardMapResponse address family is neither 4 nor 6",
            })
        }
    };
    Ok(std::net::SocketAddr::new(ip, port))
}

/// Borrowing view of a `ShardMapResponse` payload: the header fields are
/// parsed eagerly (they are fixed-width), the address list stays in the
/// frame buffer and decodes lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMapRef<'a> {
    /// See [`ShardMapWire::epoch`].
    pub epoch: u64,
    /// See [`ShardMapWire::seed`].
    pub seed: u64,
    /// See [`ShardMapWire::replication`].
    pub replication: u32,
    /// See [`ShardMapWire::virtual_nodes`].
    pub virtual_nodes: u32,
    raw_shards: &'a [u8],
}

impl ShardMapRef<'_> {
    /// Number of shard addresses carried.
    pub fn len(&self) -> usize {
        self.raw_shards.len() / SHARD_ADDR_WIRE_LEN
    }

    /// True when the map carries no shards.
    pub fn is_empty(&self) -> bool {
        self.raw_shards.is_empty()
    }

    /// Decodes the full owned map. Address grammar was already validated
    /// by [`decode_body_ref`], so this cannot fail.
    pub fn to_wire(&self) -> ShardMapWire {
        ShardMapWire {
            epoch: self.epoch,
            seed: self.seed,
            replication: self.replication,
            virtual_nodes: self.virtual_nodes,
            shards: self
                .raw_shards
                .chunks_exact(SHARD_ADDR_WIRE_LEN)
                .map(|c| read_shard_addr(c).expect("validated at decode"))
                .collect(),
        }
    }
}

/// A server health snapshot as carried by [`Message::HealthReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthStatus {
    /// Connections accepted but not yet picked up by a worker.
    pub queue_depth: u32,
    /// Requests currently being served across all workers (a `Health`
    /// request counts itself).
    pub in_flight: u32,
    /// Connections shed with a `Busy` reply since startup.
    pub shed_connections: u64,
    /// Worker panics caught (and recovered from) since startup.
    pub worker_panics: u64,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queue_depth={} in_flight={} shed={} worker_panics={}",
            self.queue_depth, self.in_flight, self.shed_connections, self.worker_panics
        )
    }
}

/// One protocol message — the unit the client and server exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Liveness probe.
    Ping,
    /// Edge → cloud: request the prior registered under `task_id`.
    PriorRequest {
        /// Task family the device belongs to.
        task_id: u64,
    },
    /// Cloud → edge: the serialized prior, exactly the
    /// [`dro_edge::transfer`] bytes.
    PriorResponse {
        /// Opaque `dro_edge::transfer` payload.
        payload: Vec<u8>,
    },
    /// Edge → cloud: a locally fitted packed model, feeding the cloud's
    /// lifelong refit loop.
    ModelReport {
        /// Task family the device belongs to.
        task_id: u64,
        /// Identity of the reporting edge device.
        device_id: u64,
        /// The device's monotone report sequence number (starts at 1).
        seq: u64,
        /// Packed model parameters `[w…, b]`.
        params: Vec<f64>,
    },
    /// Either direction: a protocol-level failure report.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Cloud → edge: the request was shed under load. Retryable after the
    /// carried hint.
    Busy {
        /// Suggested minimum wait before the next attempt, milliseconds.
        retry_after_ms: u32,
    },
    /// Edge → cloud: request a [`Message::HealthReport`].
    Health,
    /// Cloud → edge: load and resilience gauges.
    HealthReport(HealthStatus),
    /// Edge → cloud: request the current [`Message::ShardMapResponse`].
    ShardMapRequest,
    /// Cloud → edge: the epoch-stamped shard map.
    ShardMapResponse {
        /// The routing map.
        map: ShardMapWire,
    },
    /// Cloud → edge: the acknowledgement for [`Message::ModelReport`].
    ReportAck {
        /// True when the report entered the inbox; false when it was
        /// dropped before it (replay, rate cap, or overflow shed).
        accepted: bool,
    },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Ping => 0,
            Message::PriorRequest { .. } => 1,
            Message::PriorResponse { .. } => 2,
            Message::ModelReport { .. } => 3,
            Message::Error { .. } => 4,
            Message::Busy { .. } => 5,
            Message::Health => 6,
            Message::HealthReport(_) => 7,
            Message::ShardMapRequest => 8,
            Message::ShardMapResponse { .. } => 9,
            Message::ReportAck { .. } => 10,
        }
    }

    /// Human-readable message-kind name, used in error reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Ping => "Ping",
            Message::PriorRequest { .. } => "PriorRequest",
            Message::PriorResponse { .. } => "PriorResponse",
            Message::ModelReport { .. } => "ModelReport",
            Message::Error { .. } => "Error",
            Message::Busy { .. } => "Busy",
            Message::Health => "Health",
            Message::HealthReport(_) => "HealthReport",
            Message::ShardMapRequest => "ShardMapRequest",
            Message::ShardMapResponse { .. } => "ShardMapResponse",
            Message::ReportAck { .. } => "ReportAck",
        }
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Ping => {}
            Message::PriorRequest { task_id } => out.extend_from_slice(&task_id.to_le_bytes()),
            Message::PriorResponse { payload } => out.extend_from_slice(payload),
            Message::ModelReport {
                task_id,
                device_id,
                seq,
                params,
            } => {
                out.extend_from_slice(&task_id.to_le_bytes());
                out.extend_from_slice(&device_id.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(params.len() as u32).to_le_bytes());
                for p in params {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            Message::Error { code, detail } => {
                out.push(*code as u8);
                out.extend_from_slice(detail.as_bytes());
            }
            Message::Busy { retry_after_ms } => {
                out.extend_from_slice(&retry_after_ms.to_le_bytes())
            }
            Message::Health => {}
            Message::HealthReport(h) => {
                out.extend_from_slice(&h.queue_depth.to_le_bytes());
                out.extend_from_slice(&h.in_flight.to_le_bytes());
                out.extend_from_slice(&h.shed_connections.to_le_bytes());
                out.extend_from_slice(&h.worker_panics.to_le_bytes());
            }
            Message::ShardMapRequest => {}
            Message::ShardMapResponse { map } => {
                out.extend_from_slice(&map.epoch.to_le_bytes());
                out.extend_from_slice(&map.seed.to_le_bytes());
                out.extend_from_slice(&map.replication.to_le_bytes());
                out.extend_from_slice(&map.virtual_nodes.to_le_bytes());
                out.extend_from_slice(&(map.shards.len() as u32).to_le_bytes());
                for addr in &map.shards {
                    write_shard_addr(out, addr);
                }
            }
            Message::ReportAck { accepted } => out.push(u8::from(*accepted)),
        }
    }
}

/// Encodes a message into one complete frame.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(msg, &mut out);
    out
}

/// Encodes a message into `out` (cleared first), reusing its capacity:
/// once `out` has grown to the working frame size, the steady-state encode
/// path makes no allocations. Output is byte-for-byte identical to
/// [`encode`].
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0u8; LEN_PREFIX]);
    out.push(FRAME_VERSION);
    out.push(msg.kind());
    out.extend_from_slice(&[0u8; 4]);
    msg.write_payload(out);
    finish_frame(out);
}

/// Frames an already-serialized [`dro_edge::transfer`] payload as a
/// `PriorResponse` without first copying it into a [`Message`] —
/// byte-for-byte identical to `encode(&Message::PriorResponse { .. })`.
/// This is how the server builds its pre-encoded response cache.
pub fn encode_prior_response(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&[0u8; LEN_PREFIX]);
    out.push(FRAME_VERSION);
    out.push(2); // PriorResponse kind
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(payload);
    finish_frame(&mut out);
    out
}

/// Back-patches the length prefix and CRC of a frame whose header fields
/// were left zeroed by the encode helpers above.
fn finish_frame(out: &mut [u8]) {
    let body_len = out.len() - LEN_PREFIX;
    let crc = Crc32::new()
        .update(&out[LEN_PREFIX..LEN_PREFIX + 2])
        .update(&out[FRAME_OVERHEAD..])
        .finalize();
    out[..LEN_PREFIX].copy_from_slice(&(body_len as u32).to_le_bytes());
    out[LEN_PREFIX + 2..FRAME_OVERHEAD].copy_from_slice(&crc.to_le_bytes());
}

/// Packed model parameters still in wire form (little-endian `f64`s),
/// decoded lazily — the borrowing counterpart of the `params` vector in
/// [`Message::ModelReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamsRef<'a> {
    raw: &'a [u8],
}

impl<'a> ParamsRef<'a> {
    /// Number of packed parameters.
    pub fn len(&self) -> usize {
        self.raw.len() / 8
    }

    /// True when no parameters are carried.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Decodes the parameters in wire order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
    }

    /// Decodes all parameters into an owned vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }
}

/// Borrowing view of one decoded message: the payload-carrying variants
/// reference the frame buffer instead of copying out of it, which is what
/// lets the serving hot path parse requests without allocating. Produced
/// by [`decode_ref`]/[`decode_body_ref`]; [`MessageRef::to_owned`] copies
/// into a [`Message`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MessageRef<'a> {
    /// See [`Message::Ping`].
    Ping,
    /// See [`Message::PriorRequest`].
    PriorRequest {
        /// Task family the device belongs to.
        task_id: u64,
    },
    /// See [`Message::PriorResponse`]; the payload borrows the frame.
    PriorResponse {
        /// Opaque `dro_edge::transfer` payload, still in the frame buffer.
        payload: &'a [u8],
    },
    /// See [`Message::ModelReport`]; parameters stay packed in the frame.
    ModelReport {
        /// Task family the device belongs to.
        task_id: u64,
        /// Identity of the reporting edge device.
        device_id: u64,
        /// The device's monotone report sequence number.
        seq: u64,
        /// Packed model parameters, decoded lazily.
        params: ParamsRef<'a>,
    },
    /// See [`Message::Error`]; the detail borrows the frame.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail, still in the frame buffer.
        detail: &'a str,
    },
    /// See [`Message::Busy`].
    Busy {
        /// Suggested minimum wait before the next attempt, milliseconds.
        retry_after_ms: u32,
    },
    /// See [`Message::Health`].
    Health,
    /// See [`Message::HealthReport`].
    HealthReport(HealthStatus),
    /// See [`Message::ShardMapRequest`].
    ShardMapRequest,
    /// See [`Message::ShardMapResponse`]; the address list borrows the
    /// frame.
    ShardMapResponse {
        /// The routing map, addresses still in the frame buffer.
        map: ShardMapRef<'a>,
    },
    /// See [`Message::ReportAck`].
    ReportAck {
        /// True when the report entered the inbox.
        accepted: bool,
    },
}

impl MessageRef<'_> {
    /// Human-readable message-kind name, used in error reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MessageRef::Ping => "Ping",
            MessageRef::PriorRequest { .. } => "PriorRequest",
            MessageRef::PriorResponse { .. } => "PriorResponse",
            MessageRef::ModelReport { .. } => "ModelReport",
            MessageRef::Error { .. } => "Error",
            MessageRef::Busy { .. } => "Busy",
            MessageRef::Health => "Health",
            MessageRef::HealthReport(_) => "HealthReport",
            MessageRef::ShardMapRequest => "ShardMapRequest",
            MessageRef::ShardMapResponse { .. } => "ShardMapResponse",
            MessageRef::ReportAck { .. } => "ReportAck",
        }
    }

    /// Copies the borrowed view into an owned [`Message`].
    pub fn to_owned(self) -> Message {
        match self {
            MessageRef::Ping => Message::Ping,
            MessageRef::PriorRequest { task_id } => Message::PriorRequest { task_id },
            MessageRef::PriorResponse { payload } => Message::PriorResponse {
                payload: payload.to_vec(),
            },
            MessageRef::ModelReport {
                task_id,
                device_id,
                seq,
                params,
            } => Message::ModelReport {
                task_id,
                device_id,
                seq,
                params: params.to_vec(),
            },
            MessageRef::Error { code, detail } => Message::Error {
                code,
                detail: detail.to_string(),
            },
            MessageRef::Busy { retry_after_ms } => Message::Busy { retry_after_ms },
            MessageRef::Health => Message::Health,
            MessageRef::HealthReport(h) => Message::HealthReport(h),
            MessageRef::ShardMapRequest => Message::ShardMapRequest,
            MessageRef::ShardMapResponse { map } => Message::ShardMapResponse {
                map: map.to_wire(),
            },
            MessageRef::ReportAck { accepted } => Message::ReportAck { accepted },
        }
    }
}

/// Decodes one complete frame from a buffer, requiring exact consumption:
/// a length prefix that disagrees with the buffer size is an error, so a
/// corrupted length byte can never be silently accepted.
pub fn decode(bytes: &[u8]) -> Result<Message> {
    decode_ref(bytes).map(MessageRef::to_owned)
}

/// Borrowing [`decode`]: identical checks and error classes, but the
/// payload-carrying variants reference `bytes` instead of copying — this
/// is the request-parsing path the server hot loop runs.
pub fn decode_ref(bytes: &[u8]) -> Result<MessageRef<'_>> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(ServeError::MalformedFrame {
            reason: "buffer shorter than the fixed frame overhead",
        });
    }
    let declared = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if declared != bytes.len() - LEN_PREFIX {
        return Err(ServeError::MalformedFrame {
            reason: "length prefix disagrees with the frame size",
        });
    }
    decode_body_ref(&bytes[LEN_PREFIX..])
}

/// Parses a frame body (everything after the length prefix): CRC first,
/// then version, then grammar. This is the single decode grammar — the
/// owned [`decode`] copies out of the view this returns. Pairs with
/// [`read_frame_into`] for an allocation-free read path.
pub fn decode_body_ref(body: &[u8]) -> Result<MessageRef<'_>> {
    if body.len() < BODY_HEADER {
        return Err(ServeError::MalformedFrame {
            reason: "frame body shorter than its fixed header",
        });
    }
    let ver = body[0];
    let kind = body[1];
    let carried = u32::from_le_bytes(body[2..6].try_into().expect("4 bytes"));
    let payload = &body[BODY_HEADER..];
    let computed = Crc32::new()
        .update(&[ver, kind])
        .update(payload)
        .finalize();
    if computed != carried {
        return Err(ServeError::ChecksumMismatch {
            expected: carried,
            computed,
        });
    }
    if ver != FRAME_VERSION {
        return Err(ServeError::VersionMismatch {
            found: ver,
            supported: FRAME_VERSION,
        });
    }
    match kind {
        0 => {
            if !payload.is_empty() {
                return Err(ServeError::MalformedFrame {
                    reason: "Ping carries a payload",
                });
            }
            Ok(MessageRef::Ping)
        }
        1 => {
            if payload.len() != 8 {
                return Err(ServeError::MalformedFrame {
                    reason: "PriorRequest payload is not exactly a u64 task id",
                });
            }
            Ok(MessageRef::PriorRequest {
                task_id: u64::from_le_bytes(payload.try_into().expect("8 bytes")),
            })
        }
        2 => Ok(MessageRef::PriorResponse { payload }),
        3 => {
            const HEADER: usize = 8 + 8 + 8 + 4;
            if payload.len() < HEADER {
                return Err(ServeError::MalformedFrame {
                    reason: "ModelReport payload shorter than its header",
                });
            }
            let task_id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let device_id = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            let seq = u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes(payload[24..28].try_into().expect("4 bytes")) as usize;
            if payload.len() != HEADER + 8 * count {
                return Err(ServeError::MalformedFrame {
                    reason: "ModelReport parameter count disagrees with its length",
                });
            }
            if seq == 0 {
                return Err(ServeError::MalformedFrame {
                    reason: "ModelReport sequence numbers start at 1",
                });
            }
            Ok(MessageRef::ModelReport {
                task_id,
                device_id,
                seq,
                params: ParamsRef {
                    raw: &payload[HEADER..],
                },
            })
        }
        4 => {
            if payload.is_empty() {
                return Err(ServeError::MalformedFrame {
                    reason: "Error payload is missing its code byte",
                });
            }
            let code = ErrorCode::from_u8(payload[0]).ok_or(ServeError::MalformedFrame {
                reason: "Error payload carries an unknown code",
            })?;
            let detail =
                std::str::from_utf8(&payload[1..]).map_err(|_| ServeError::MalformedFrame {
                    reason: "Error detail is not valid UTF-8",
                })?;
            Ok(MessageRef::Error { code, detail })
        }
        5 => {
            if payload.len() != 4 {
                return Err(ServeError::MalformedFrame {
                    reason: "Busy payload is not exactly a u32 retry hint",
                });
            }
            Ok(MessageRef::Busy {
                retry_after_ms: u32::from_le_bytes(payload.try_into().expect("4 bytes")),
            })
        }
        6 => {
            if !payload.is_empty() {
                return Err(ServeError::MalformedFrame {
                    reason: "Health carries a payload",
                });
            }
            Ok(MessageRef::Health)
        }
        7 => {
            if payload.len() != 24 {
                return Err(ServeError::MalformedFrame {
                    reason: "HealthReport payload is not exactly 24 bytes",
                });
            }
            Ok(MessageRef::HealthReport(HealthStatus {
                queue_depth: u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")),
                in_flight: u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")),
                shed_connections: u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
                worker_panics: u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes")),
            }))
        }
        8 => {
            if !payload.is_empty() {
                return Err(ServeError::MalformedFrame {
                    reason: "ShardMapRequest carries a payload",
                });
            }
            Ok(MessageRef::ShardMapRequest)
        }
        9 => {
            const HEADER: usize = 8 + 8 + 4 + 4 + 4;
            if payload.len() < HEADER {
                return Err(ServeError::MalformedFrame {
                    reason: "ShardMapResponse payload shorter than its header",
                });
            }
            let epoch = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let seed = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            let replication = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes"));
            let virtual_nodes = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(payload[24..28].try_into().expect("4 bytes")) as usize;
            if payload.len() != HEADER + SHARD_ADDR_WIRE_LEN * count {
                return Err(ServeError::MalformedFrame {
                    reason: "ShardMapResponse shard count disagrees with its length",
                });
            }
            if replication == 0 || virtual_nodes == 0 {
                return Err(ServeError::MalformedFrame {
                    reason: "ShardMapResponse replication and virtual_nodes must be nonzero",
                });
            }
            let raw_shards = &payload[HEADER..];
            // Validate every address now so the lazy decode cannot fail.
            for chunk in raw_shards.chunks_exact(SHARD_ADDR_WIRE_LEN) {
                read_shard_addr(chunk)?;
            }
            Ok(MessageRef::ShardMapResponse {
                map: ShardMapRef {
                    epoch,
                    seed,
                    replication,
                    virtual_nodes,
                    raw_shards,
                },
            })
        }
        10 => {
            if payload.len() != 1 {
                return Err(ServeError::MalformedFrame {
                    reason: "ReportAck payload is not exactly a status byte",
                });
            }
            match payload[0] {
                0 => Ok(MessageRef::ReportAck { accepted: false }),
                1 => Ok(MessageRef::ReportAck { accepted: true }),
                _ => Err(ServeError::MalformedFrame {
                    reason: "ReportAck status byte is neither 0 nor 1",
                }),
            }
        }
        _ => Err(ServeError::MalformedFrame {
            reason: "unknown message kind",
        }),
    }
}

/// Writes one frame to a transport; returns the bytes written.
pub fn write_frame<T: Transport + ?Sized>(t: &mut T, msg: &Message) -> Result<usize> {
    let bytes = encode(msg);
    t.send(&bytes)?;
    Ok(bytes.len())
}

/// Reads one frame from a transport; returns the message and its total
/// wire size. Errors with [`ServeError::ShortRead`] if the stream ends
/// mid-frame.
pub fn read_frame<T: Transport + ?Sized>(t: &mut T, max_len: usize) -> Result<(Message, usize)> {
    let mut lenb = [0u8; LEN_PREFIX];
    t.recv_exact(&mut lenb)?;
    read_after_len(t, lenb, max_len)
}

/// Like [`read_frame`], but a clean end-of-stream *before the first byte*
/// returns `Ok(None)` — how the server distinguishes a client hanging up
/// between requests from a truncated frame.
pub fn read_frame_or_eof<T: Transport + ?Sized>(
    t: &mut T,
    max_len: usize,
) -> Result<Option<(Message, usize)>> {
    let mut lenb = [0u8; LEN_PREFIX];
    if !t.recv_exact_or_eof(&mut lenb)? {
        return Ok(None);
    }
    read_after_len(t, lenb, max_len).map(Some)
}

fn read_after_len<T: Transport + ?Sized>(
    t: &mut T,
    lenb: [u8; LEN_PREFIX],
    max_len: usize,
) -> Result<(Message, usize)> {
    let len = u32::from_le_bytes(lenb) as usize;
    let mut body = Vec::new();
    let wire = read_body_into(t, len, max_len, &mut body)?;
    let msg = decode_body_ref(&body)?.to_owned();
    Ok((msg, wire))
}

/// Reads one whole frame from a transport into `buf` (cleared and reused):
/// length prefix at `buf[..LEN_PREFIX]`, body at `buf[LEN_PREFIX..]`;
/// returns the total wire size. The first read is greedy — in steady state
/// the prefix and the whole body arrive in a single transport read (one
/// syscall on TCP), and the read path stops allocating once `buf` has
/// grown to the working frame size. Greedy is safe because the protocol
/// is strictly request/response: the peer never has a second frame in
/// flight behind the one being read (extra bytes are rejected as
/// malformed). Callers parse with [`decode_body_ref`] on
/// `buf[LEN_PREFIX..]`.
pub fn read_frame_into<T: Transport + ?Sized>(
    t: &mut T,
    max_len: usize,
    buf: &mut Vec<u8>,
) -> Result<usize> {
    let guess = buf
        .capacity()
        .clamp(LEN_PREFIX + BODY_HEADER, LEN_PREFIX + max_len);
    // Grow-only: every byte up to `total` is overwritten by the reads
    // below and the buffer is truncated to `total` before returning, so
    // re-zeroing retained capacity would only add a memset per request.
    if buf.len() < guess {
        buf.resize(guess, 0);
    }
    let mut got = 0;
    while got < LEN_PREFIX {
        got += t.recv_some(&mut buf[got..])?;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len < BODY_HEADER {
        return Err(ServeError::MalformedFrame {
            reason: "declared frame body shorter than its fixed header",
        });
    }
    if len > max_len {
        return Err(ServeError::FrameTooLarge { len, max: max_len });
    }
    let total = LEN_PREFIX + len;
    if got > total {
        return Err(ServeError::MalformedFrame {
            reason: "peer sent bytes past the end of the frame",
        });
    }
    if buf.len() < total {
        buf.resize(total, 0);
    }
    while got < total {
        got += t.recv_some(&mut buf[got..total])?;
    }
    buf.truncate(total);
    Ok(total)
}

fn read_body_into<T: Transport + ?Sized>(
    t: &mut T,
    len: usize,
    max_len: usize,
    body: &mut Vec<u8>,
) -> Result<usize> {
    if len < BODY_HEADER {
        return Err(ServeError::MalformedFrame {
            reason: "declared frame body shorter than its fixed header",
        });
    }
    if len > max_len {
        return Err(ServeError::FrameTooLarge { len, max: max_len });
    }
    body.clear();
    body.resize(len, 0);
    t.recv_exact(body)?;
    Ok(LEN_PREFIX + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Ping,
            Message::PriorRequest { task_id: 42 },
            Message::PriorResponse {
                payload: vec![1, 2, 3, 4, 5],
            },
            Message::ModelReport {
                task_id: 7,
                device_id: 31,
                seq: 2,
                params: vec![0.5, -1.25, 3.0],
            },
            Message::Error {
                code: ErrorCode::UnknownTask,
                detail: "task 9 has no prior".into(),
            },
            Message::Busy { retry_after_ms: 250 },
            Message::Health,
            Message::HealthReport(HealthStatus {
                queue_depth: 3,
                in_flight: 2,
                shed_connections: 11,
                worker_panics: 1,
            }),
            Message::ShardMapRequest,
            Message::ShardMapResponse {
                map: ShardMapWire {
                    epoch: 5,
                    seed: 7_400,
                    replication: 2,
                    virtual_nodes: 16,
                    shards: vec![
                        "127.0.0.1:9001".parse().unwrap(),
                        "[::1]:9002".parse().unwrap(),
                    ],
                },
            },
            Message::ReportAck { accepted: true },
            Message::ReportAck { accepted: false },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for msg in all_messages() {
            let bytes = encode(&msg);
            assert_eq!(decode(&bytes).unwrap(), msg, "{}", msg.kind_name());
        }
    }

    #[test]
    fn frame_len_helpers_match_the_encoder() {
        assert_eq!(encode(&Message::Ping).len(), ping_frame_len());
        assert_eq!(
            encode(&Message::PriorRequest { task_id: 1 }).len(),
            prior_request_frame_len()
        );
        assert_eq!(
            encode(&Message::ModelReport {
                task_id: 1,
                device_id: 2,
                seq: 1,
                params: vec![0.0; 9],
            })
            .len(),
            model_report_frame_len(9)
        );
        assert_eq!(
            encode(&Message::ReportAck { accepted: false }).len(),
            report_ack_frame_len()
        );
        // PriorResponse length = overhead + transfer payload, unchanged.
        let payload = vec![0xAB; dro_edge::transfer::encoded_len(3, 4)];
        assert_eq!(
            encode(&Message::PriorResponse { payload }).len(),
            prior_response_frame_len(3, 4)
        );
        assert_eq!(
            encode(&Message::Busy { retry_after_ms: 5 }).len(),
            busy_frame_len()
        );
        assert_eq!(encode(&Message::Health).len(), health_frame_len());
        assert_eq!(
            encode(&Message::HealthReport(HealthStatus::default())).len(),
            health_report_frame_len()
        );
        assert_eq!(
            encode(&Message::ShardMapRequest).len(),
            shard_map_request_frame_len()
        );
        for n in [0usize, 1, 4] {
            let map = ShardMapWire {
                epoch: 1,
                seed: 2,
                replication: 1,
                virtual_nodes: 8,
                shards: (0..n)
                    .map(|i| format!("10.0.0.{}:70{i:02}", i + 1).parse().unwrap())
                    .collect(),
            };
            assert_eq!(
                encode(&Message::ShardMapResponse { map }).len(),
                shard_map_response_frame_len(n),
                "shard map frame length for {n} shard(s)"
            );
        }
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let bytes = encode(&Message::PriorRequest { task_id: 99 });
        // Payload corruption → checksum mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            decode(&bad),
            Err(ServeError::ChecksumMismatch { .. })
        ));
        // Length-prefix corruption → malformed (exact-consumption check).
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(decode(&bad), Err(ServeError::MalformedFrame { .. })));
        // CRC-field corruption → checksum mismatch.
        let mut bad = bytes.clone();
        bad[6] ^= 0xFF;
        assert!(matches!(
            decode(&bad),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_mismatch_needs_a_valid_crc() {
        // A frame legitimately produced at version 2 (CRC computed over the
        // new version byte) is a fatal version mismatch…
        let msg = Message::Ping;
        let mut bytes = encode(&msg);
        bytes[4] = 2;
        let crc = Crc32::new().update(&[2, 0]).finalize();
        bytes[6..10].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(ServeError::VersionMismatch { found: 2, .. })
        ));
        // …while a *corrupted* version byte (stale CRC) reads as transient
        // corruption, which is retryable.
        let mut corrupted = encode(&msg);
        corrupted[4] = 2;
        let err = decode(&corrupted).unwrap_err();
        assert!(matches!(err, ServeError::ChecksumMismatch { .. }));
        assert!(err.is_retryable());
    }

    #[test]
    fn grammar_violations_are_malformed() {
        // Ping with payload.
        let mut body = vec![FRAME_VERSION, 0, 0, 0, 0, 0, 9];
        let crc = Crc32::new()
            .update(&[FRAME_VERSION, 0])
            .update(&[9])
            .finalize();
        body[2..6].copy_from_slice(&crc.to_le_bytes());
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        assert!(matches!(
            decode(&framed),
            Err(ServeError::MalformedFrame { .. })
        ));
        // Unknown kind (valid CRC).
        let mut body = vec![FRAME_VERSION, 77, 0, 0, 0, 0];
        let crc = Crc32::new().update(&[FRAME_VERSION, 77]).finalize();
        body[2..6].copy_from_slice(&crc.to_le_bytes());
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        assert!(matches!(
            decode(&framed),
            Err(ServeError::MalformedFrame { .. })
        ));
        // Truncated buffer.
        assert!(matches!(
            decode(&encode(&Message::Ping)[..5]),
            Err(ServeError::MalformedFrame { .. })
        ));
        // Busy with a short hint, Health with a payload, HealthReport with
        // a truncated payload, ShardMapRequest with a payload, and
        // ShardMapResponse frames that are truncated, count-inconsistent,
        // zero-replication, bad-family, or pad-dirty — all grammar
        // violations with a valid CRC.
        let map_header = |rep: u32, vnodes: u32, count: u32| -> Vec<u8> {
            let mut p = Vec::new();
            p.extend_from_slice(&1u64.to_le_bytes());
            p.extend_from_slice(&2u64.to_le_bytes());
            p.extend_from_slice(&rep.to_le_bytes());
            p.extend_from_slice(&vnodes.to_le_bytes());
            p.extend_from_slice(&count.to_le_bytes());
            p
        };
        let good_addr = |family: u8, pad: u8| -> Vec<u8> {
            let mut a = vec![family, 127, 0, 0, 1];
            a.extend_from_slice(&[pad; 12]);
            a.extend_from_slice(&9001u16.to_le_bytes());
            a
        };
        let mut count_mismatch = map_header(1, 8, 2);
        count_mismatch.extend_from_slice(&good_addr(4, 0));
        let mut zero_rep = map_header(0, 8, 1);
        zero_rep.extend_from_slice(&good_addr(4, 0));
        let mut bad_family = map_header(1, 8, 1);
        bad_family.extend_from_slice(&good_addr(9, 0));
        let mut dirty_pad = map_header(1, 8, 1);
        dirty_pad.extend_from_slice(&good_addr(4, 0xAA));
        // ModelReport with a full header but seq = 0 (sequence numbers
        // start at 1), and one cut a byte short of its header.
        let report_zero_seq = vec![0u8; 28];
        let report_short = vec![0u8; 27];
        for (kind, payload) in [
            (3u8, report_zero_seq),
            (3, report_short),
            (5, vec![1u8, 2]),
            (6, vec![9]),
            (7, vec![0; 23]),
            (8, vec![1]),
            (9, vec![0; 27]),
            (9, count_mismatch),
            (9, zero_rep),
            (9, bad_family),
            (9, dirty_pad),
            (10, vec![2]),
            (10, vec![1, 1]),
            (10, vec![]),
        ] {
            let mut body = vec![FRAME_VERSION, kind, 0, 0, 0, 0];
            body.extend_from_slice(&payload);
            let crc = Crc32::new()
                .update(&[FRAME_VERSION, kind])
                .update(&payload)
                .finalize();
            body[2..6].copy_from_slice(&crc.to_le_bytes());
            let mut framed = (body.len() as u32).to_le_bytes().to_vec();
            framed.extend_from_slice(&body);
            assert!(
                matches!(decode(&framed), Err(ServeError::MalformedFrame { .. })),
                "kind {kind} grammar violation slipped through"
            );
        }
    }
}
