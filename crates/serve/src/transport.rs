//! Byte transports: real TCP sockets and a deterministic faulty double.
//!
//! The client and the frame codec are generic over [`Transport`], so the
//! exact same retry/checksum code paths run over a real `TcpStream` in
//! production and over [`FaultyTransport`] — an in-memory transport that
//! injects drops, truncations, bit-flips, and delays from a seeded RNG —
//! in `cargo test`, deterministically.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, ServeError};

/// A bidirectional byte pipe the frame codec runs over.
pub trait Transport {
    /// Writes all of `bytes` to the peer.
    fn send(&mut self, bytes: &[u8]) -> Result<()>;

    /// Fills `buf` completely from the peer, erroring with
    /// [`ServeError::ShortRead`] if the stream ends first.
    fn recv_exact(&mut self, buf: &mut [u8]) -> Result<()>;

    /// Like [`Transport::recv_exact`], but a clean end-of-stream before the
    /// first byte returns `Ok(false)` instead of an error.
    fn recv_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool>;

    /// Reads *at least one* byte into `buf` in a single transport
    /// operation, returning how many landed — the greedy primitive behind
    /// the one-read-per-frame hot path ([`crate::frame::read_frame_into`]).
    /// The default implementation fills `buf` exactly.
    fn recv_some(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.recv_exact(buf)?;
        Ok(buf.len())
    }

    /// Like [`Transport::recv_some`], but a peer that closed cleanly
    /// before sending anything yields `Ok(0)` instead of an error.
    fn recv_some_or_eof(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.recv_exact_or_eof(buf)? {
            Ok(buf.len())
        } else {
            Ok(0)
        }
    }
}

/// Opens a fresh [`Transport`] per request attempt — a TCP connection in
/// production, a faulty in-memory pipe in tests.
pub trait Connector {
    /// The transport this connector produces.
    type Transport: Transport;

    /// Establishes a fresh connection.
    fn connect(&mut self) -> Result<Self::Transport>;

    /// Informs the connector that an attempt just failed with a retryable
    /// error, before the retry loop sleeps and reconnects. Routing
    /// connectors use this to fail over to the next replica (or refresh
    /// their shard map on a [`ServeError::Misrouted`] redirect); plain
    /// connectors ignore it.
    fn note_retryable_error(&mut self, _error: &ServeError) {}
}

// ---------------------------------------------------------------------------
// Real sockets
// ---------------------------------------------------------------------------

/// [`Transport`] over a `TcpStream`.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps an already-connected stream (deadlines, if any, must already
    /// be set by the caller).
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream }
    }

    /// Wraps a stream and installs per-connection read/write deadlines.
    pub fn with_deadlines(
        stream: TcpStream,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<Self> {
        stream.set_read_timeout(read).map_err(|source| ServeError::Io {
            op: "set_read_timeout",
            source,
        })?;
        stream
            .set_write_timeout(write)
            .map_err(|source| ServeError::Io {
                op: "set_write_timeout",
                source,
            })?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<()> {
        self.stream.write_all(bytes).map_err(|source| ServeError::Io {
            op: "write",
            source,
        })
    }

    fn recv_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        read_fully(&mut self.stream, buf, false).map(|_| ())
    }

    fn recv_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool> {
        read_fully(&mut self.stream, buf, true)
    }

    fn recv_some(&mut self, buf: &mut [u8]) -> Result<usize> {
        match self.recv_some_or_eof(buf)? {
            0 => Err(ServeError::ShortRead {
                expected: buf.len(),
                got: 0,
            }),
            n => Ok(n),
        }
    }

    fn recv_some_or_eof(&mut self, buf: &mut [u8]) -> Result<usize> {
        loop {
            match self.stream.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(source) => return Err(ServeError::Io { op: "read", source }),
            }
        }
    }
}

/// Outcome of one step of nonblocking socket I/O — the primitive the
/// polled per-core server runtime is built on. Unlike the blocking
/// [`Transport`] methods, a step distinguishes "no progress possible right
/// now" ([`IoStep::WouldBlock`]) from an actual failure, so an event loop
/// can park the connection until the next readiness notification instead
/// of erroring out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStep {
    /// `n > 0` bytes moved.
    Progress(usize),
    /// The socket cannot make progress without blocking; re-arm and wait
    /// for readiness.
    WouldBlock,
    /// The peer closed cleanly (reads only).
    Eof,
}

/// One nonblocking read into `buf`. `Interrupted` is retried; `WouldBlock`
/// is a first-class outcome, not an error.
pub fn read_step(stream: &mut TcpStream, buf: &mut [u8]) -> Result<IoStep> {
    loop {
        match stream.read(buf) {
            Ok(0) => return Ok(IoStep::Eof),
            Ok(n) => return Ok(IoStep::Progress(n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return Ok(IoStep::WouldBlock)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(source) => return Err(ServeError::Io { op: "read", source }),
        }
    }
}

/// One nonblocking write from `buf`. `Interrupted` is retried; a `0`-byte
/// write (a closed peer on some platforms) maps to an I/O error rather
/// than an infinite loop.
pub fn write_step(stream: &mut TcpStream, buf: &[u8]) -> Result<IoStep> {
    loop {
        match stream.write(buf) {
            Ok(0) => {
                return Err(ServeError::Io {
                    op: "write",
                    source: std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ),
                })
            }
            Ok(n) => return Ok(IoStep::Progress(n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return Ok(IoStep::WouldBlock)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(source) => return Err(ServeError::Io { op: "write", source }),
        }
    }
}

/// Fills `buf` from `r`; with `eof_ok`, 0 bytes before the first read is a
/// clean EOF (`Ok(false)`), while an EOF mid-buffer is always a short read.
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8], eof_ok: bool) -> Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(ServeError::ShortRead {
                    expected: buf.len() - got,
                    got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(source) => return Err(ServeError::Io { op: "read", source }),
        }
    }
    Ok(true)
}

/// [`Connector`] establishing real TCP connections with a connect timeout
/// and per-connection read/write deadlines.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: std::net::SocketAddr,
    /// Timeout for establishing the connection.
    pub connect_timeout: Duration,
    /// Read deadline installed on each connection.
    pub read_timeout: Option<Duration>,
    /// Write deadline installed on each connection.
    pub write_timeout: Option<Duration>,
}

impl TcpConnector {
    /// A connector for `addr` with 1 s connect and 5 s read/write
    /// deadlines.
    pub fn new(addr: std::net::SocketAddr) -> Self {
        TcpConnector {
            addr,
            connect_timeout: Duration::from_secs(1),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
        }
    }

    /// The address this connector dials.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Connector for TcpConnector {
    type Transport = TcpTransport;

    fn connect(&mut self) -> Result<TcpTransport> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout).map_err(
            |source| ServeError::Io {
                op: "connect",
                source,
            },
        )?;
        // Request/response over a persistent stream is the worst case for
        // Nagle + delayed-ACK: the next small request frame would sit
        // queued behind the unacked previous response. Best-effort — a
        // stack that refuses the option just keeps the default latency.
        let _ = stream.set_nodelay(true);
        TcpTransport::with_deadlines(stream, self.read_timeout, self.write_timeout)
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// What the fault injector may do to each request/response exchange.
/// Probabilities are per-opportunity; all default to zero (a perfect link).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability the connection dies before the request is delivered.
    pub drop_prob: f64,
    /// Probability the response is truncated to a strict prefix.
    pub truncate_prob: f64,
    /// Probability exactly one random bit of the response is flipped.
    pub corrupt_prob: f64,
    /// Probability a delivery is delayed by [`FaultConfig::delay`].
    pub delay_prob: f64,
    /// The injected delay duration.
    pub delay: Duration,
    /// Hard network partition: every exchange before logical step
    /// `partition_until` is dropped unconditionally (no RNG consumed), so
    /// chaos tests express partition-then-heal without wall-clock sleeps.
    /// The step counter advances only via
    /// [`FaultyConnector::advance_step`]; 0 disables the partition.
    pub partition_until: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(1),
            partition_until: 0,
        }
    }
}

/// Counts of faults actually injected — lets tests assert the adverse
/// paths really ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connections dropped before request delivery.
    pub drops: u64,
    /// Responses truncated.
    pub truncations: u64,
    /// Responses with one bit flipped.
    pub bit_flips: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Exchanges dropped by the hard partition window.
    pub partition_drops: u64,
}

/// Seeded fault source shared by every [`FaultyTransport`] a
/// [`FaultyConnector`] hands out, so a whole session's fault schedule is
/// one deterministic stream.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    config: FaultConfig,
    counts: FaultCounts,
    step: u64,
}

impl FaultInjector {
    /// A deterministic injector: same seed and config, same fault schedule.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            config,
            counts: FaultCounts::default(),
            step: 0,
        }
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// The current logical step (see [`FaultConfig::partition_until`]).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Advances the logical step clock by one.
    pub fn advance_step(&mut self) {
        self.step += 1;
    }

    /// Installs (or clears, with 0) a hard partition lasting until the
    /// step clock reaches `until`.
    pub fn partition_until(&mut self, until: u64) {
        self.config.partition_until = until;
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_range(0.0..1.0) < p
    }

    /// Applies the fault schedule to one exchange: the request bytes go in,
    /// the (possibly mangled) response bytes come out — or `Err` when the
    /// connection was dropped.
    fn exchange(&mut self, request: &[u8], respond: impl FnOnce(&[u8]) -> Vec<u8>) -> Result<Vec<u8>> {
        if self.step < self.config.partition_until {
            // Hard drop, before any RNG roll: the fault schedule after the
            // partition heals is identical to a run that never had one.
            self.counts.partition_drops += 1;
            return Err(ServeError::InjectedFault {
                what: "network partitioned",
            });
        }
        if self.roll(self.config.delay_prob) {
            self.counts.delays += 1;
            std::thread::sleep(self.config.delay);
        }
        if self.roll(self.config.drop_prob) {
            self.counts.drops += 1;
            return Err(ServeError::InjectedFault {
                what: "connection dropped before request delivery",
            });
        }
        let mut response = respond(request);
        if self.roll(self.config.corrupt_prob) && !response.is_empty() {
            self.counts.bit_flips += 1;
            let idx = self.rng.gen_range(0..response.len());
            let bit = self.rng.gen_range(0..8_u32);
            response[idx] ^= 1 << bit;
        }
        if self.roll(self.config.truncate_prob) && !response.is_empty() {
            self.counts.truncations += 1;
            let keep = self.rng.gen_range(0..response.len());
            response.truncate(keep);
        }
        Ok(response)
    }
}

/// Responds to a complete request frame with a complete response frame —
/// the server side of an in-memory exchange (see
/// [`crate::server::InMemoryServer`]).
pub trait Responder {
    /// Produces the response frame for one request frame.
    fn respond(&self, request_frame: &[u8]) -> Vec<u8>;
}

/// In-memory [`Transport`] double: requests written to it are answered by a
/// [`Responder`] through a [`FaultInjector`], so drops, truncations,
/// bit-flips, and delays hit the client's real retry and checksum code
/// deterministically.
pub struct FaultyTransport<R: Responder> {
    responder: Arc<R>,
    injector: Arc<Mutex<FaultInjector>>,
    inbox: Vec<u8>,
    read_pos: usize,
}

impl<R: Responder> Transport for FaultyTransport<R> {
    fn send(&mut self, bytes: &[u8]) -> Result<()> {
        let mut injector = self
            .injector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let response = injector.exchange(bytes, |req| self.responder.respond(req))?;
        self.inbox.extend_from_slice(&response);
        Ok(())
    }

    fn recv_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let available = self.inbox.len() - self.read_pos;
        if available < buf.len() {
            // The truncated tail (or an empty inbox after a dead exchange)
            // reads exactly like a peer hanging up mid-frame.
            self.read_pos = self.inbox.len();
            return Err(ServeError::ShortRead {
                expected: buf.len() - available,
                got: available,
            });
        }
        buf.copy_from_slice(&self.inbox[self.read_pos..self.read_pos + buf.len()]);
        self.read_pos += buf.len();
        Ok(())
    }

    fn recv_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool> {
        if self.read_pos == self.inbox.len() {
            return Ok(false);
        }
        self.recv_exact(buf).map(|_| true)
    }

    fn recv_some(&mut self, buf: &mut [u8]) -> Result<usize> {
        match self.recv_some_or_eof(buf)? {
            0 => Err(ServeError::ShortRead {
                expected: buf.len(),
                got: 0,
            }),
            n => Ok(n),
        }
    }

    fn recv_some_or_eof(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = (self.inbox.len() - self.read_pos).min(buf.len());
        buf[..n].copy_from_slice(&self.inbox[self.read_pos..self.read_pos + n]);
        self.read_pos += n;
        Ok(n)
    }
}

/// [`Connector`] handing out [`FaultyTransport`]s that share one seeded
/// [`FaultInjector`] and one [`Responder`].
pub struct FaultyConnector<R: Responder> {
    responder: Arc<R>,
    injector: Arc<Mutex<FaultInjector>>,
}

impl<R: Responder> FaultyConnector<R> {
    /// A connector whose transports answer via `responder` under the given
    /// seeded fault schedule.
    pub fn new(responder: R, injector: FaultInjector) -> Self {
        FaultyConnector {
            responder: Arc::new(responder),
            injector: Arc::new(Mutex::new(injector)),
        }
    }

    /// Faults injected so far across all connections.
    pub fn fault_counts(&self) -> FaultCounts {
        self.injector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .counts()
    }

    /// Advances the shared injector's logical step clock by one (chaos
    /// harnesses call this once per fleet round).
    pub fn advance_step(&self) {
        self.injector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .advance_step();
    }

    /// The injector's current logical step.
    pub fn step(&self) -> u64 {
        self.injector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .step()
    }

    /// Installs (or clears, with 0) a hard partition lasting until the
    /// shared step clock reaches `until`.
    pub fn partition_until(&self, until: u64) {
        self.injector
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .partition_until(until);
    }
}

impl<R: Responder> Connector for FaultyConnector<R> {
    type Transport = FaultyTransport<R>;

    fn connect(&mut self) -> Result<FaultyTransport<R>> {
        Ok(FaultyTransport {
            responder: Arc::clone(&self.responder),
            injector: Arc::clone(&self.injector),
            inbox: Vec::new(),
            read_pos: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{self, Message};

    /// Echoes every decoded frame back unchanged.
    struct Echo;
    impl Responder for Echo {
        fn respond(&self, request_frame: &[u8]) -> Vec<u8> {
            frame::encode(&frame::decode(request_frame).expect("well-formed request"))
        }
    }

    #[test]
    fn perfect_link_roundtrips() {
        let mut conn = FaultyConnector::new(Echo, FaultInjector::new(1, FaultConfig::default()));
        let mut t = conn.connect().unwrap();
        let msg = Message::PriorRequest { task_id: 5 };
        frame::write_frame(&mut t, &msg).unwrap();
        let (back, n) = frame::read_frame(&mut t, frame::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, msg);
        assert_eq!(n, frame::prior_request_frame_len());
        assert_eq!(conn.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn faults_fire_deterministically() {
        let config = FaultConfig {
            drop_prob: 0.3,
            truncate_prob: 0.3,
            corrupt_prob: 0.3,
            ..FaultConfig::default()
        };
        let run = || {
            let mut conn =
                FaultyConnector::new(Echo, FaultInjector::new(99, config.clone()));
            let mut outcomes = Vec::new();
            for i in 0..50 {
                let mut t = conn.connect().unwrap();
                let msg = Message::PriorRequest { task_id: i };
                let out = frame::write_frame(&mut t, &msg)
                    .and_then(|_| frame::read_frame(&mut t, frame::DEFAULT_MAX_FRAME_LEN));
                outcomes.push(match out {
                    Ok((m, _)) => {
                        assert_eq!(m, msg, "delivered frames must be uncorrupted");
                        "ok"
                    }
                    Err(ServeError::InjectedFault { .. }) => "drop",
                    Err(ServeError::ShortRead { .. }) => "short",
                    Err(ServeError::ChecksumMismatch { .. }) => "crc",
                    Err(ServeError::MalformedFrame { .. }) => "malformed",
                    Err(e) => panic!("unexpected error class: {e}"),
                });
            }
            (outcomes, conn.fault_counts())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b, "same seed, same fault schedule");
        assert_eq!(ca, cb);
        // The schedule actually exercised each adverse path.
        assert!(ca.drops > 0 && ca.truncations > 0 && ca.bit_flips > 0);
        assert!(a.contains(&"ok"));
    }

    #[test]
    fn partition_until_hard_drops_every_frame_then_heals() {
        let config = FaultConfig {
            partition_until: 3,
            ..FaultConfig::default()
        };
        let mut conn = FaultyConnector::new(Echo, FaultInjector::new(5, config));
        for step in 0..6u64 {
            assert_eq!(conn.step(), step);
            let mut t = conn.connect().unwrap();
            let out = frame::write_frame(&mut t, &Message::Ping)
                .and_then(|_| frame::read_frame(&mut t, frame::DEFAULT_MAX_FRAME_LEN));
            if step < 3 {
                assert!(
                    matches!(out, Err(ServeError::InjectedFault { what }) if what.contains("partition")),
                    "step {step} should be inside the partition"
                );
            } else {
                assert!(out.is_ok(), "step {step} should be healed");
            }
            conn.advance_step();
        }
        assert_eq!(conn.fault_counts().partition_drops, 3);

        // Re-partitioning mid-session works the same way.
        conn.partition_until(8);
        let mut t = conn.connect().unwrap();
        let out = frame::write_frame(&mut t, &Message::Ping);
        assert!(matches!(out, Err(ServeError::InjectedFault { .. })));
        conn.partition_until(0);
        let mut t = conn.connect().unwrap();
        frame::write_frame(&mut t, &Message::Ping).unwrap();
        frame::read_frame(&mut t, frame::DEFAULT_MAX_FRAME_LEN).unwrap();
    }
}
