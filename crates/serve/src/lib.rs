//! `dre-serve`: the cloud ↔ edge prior-transfer service.
//!
//! The paper's pipeline fits a Dirichlet-process mixture prior in the
//! cloud and ships it to resource-limited edge devices, which run a few
//! EM steps against local data. Up to this crate, that transfer was only
//! simulated (`dre-edgesim`) or done by passing byte vectors around in
//! process. `dre-serve` makes it a real service on `std::net` — no
//! external dependencies:
//!
//! * [`frame`] — a length-prefixed, CRC-32-checksummed wire protocol
//!   carrying the existing [`dro_edge::transfer`] payload unchanged.
//! * [`server`] — a per-core, readiness-polled TCP prior server. N
//!   event-loop workers own their accepted connections outright and
//!   multiplex thousands of keep-alive streams each over nonblocking
//!   sockets ([`dre_netpoll`]); pipelined replies coalesce into single
//!   flushes. The prior registry is published as immutable snapshots
//!   with an atomic generation: a prior hit is one atomic load, a lookup
//!   in the worker's own [`server::PriorView`], and one write of the
//!   generation-stamped pre-encoded frame — zero locks, no payload
//!   clone, no CRC recompute. Admission shedding, per-connection
//!   deadlines, panic containment, and graceful shutdown carry over from
//!   the threaded runtime unchanged.
//! * [`client`] — an edge client with bounded retries, deterministic
//!   exponential backoff with seeded jitter, typed errors that
//!   distinguish retryable transport trouble from fatal protocol
//!   disagreements ([`ServeError::is_retryable`]), and an opt-in
//!   keep-alive mode that reuses one live stream across requests with
//!   zero steady-state allocations.
//! * [`transport`] — the byte-pipe abstraction both sides run over,
//!   including [`transport::FaultyTransport`], a deterministic test double
//!   injecting drops, truncations, bit-flips, and delays from a seeded
//!   RNG.
//! * [`metrics`] — transfer metrics (requests, bytes, retries, checksum
//!   failures, log-spaced latency histogram) kept on both ends.
//! * [`resilience`] — a step-clocked, seeded-deterministic circuit breaker
//!   and a TTL'd stale-prior cache.
//! * [`runtime`] — [`runtime::EdgeRuntime`], the fault-tolerant
//!   fetch→fit→report loop that degrades from fresh-prior DRO through
//!   stale-prior fits down to the paper's local-only ERM baseline, tagging
//!   every fit with its [`dro_edge::FitMode`].
//! * [`shard`] — the sharded prior plane: a consistent-hash ring with
//!   per-task replication routes registrations and fetches across N
//!   prior servers; clients hold an epoch-stamped [`shard::ShardMap`]
//!   and fail over to replicas (or refresh the map on a
//!   [`ServeError::Misrouted`] redirect) inside the existing retry loop.
//!
//! The frame-length helpers ([`frame::prior_request_frame_len`],
//! [`frame::prior_response_frame_len`]) are `const fn`, so the network
//! simulator charges exactly the bytes the real service would move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod crc32;
pub mod error;
pub mod frame;
pub mod metrics;
pub mod resilience;
pub mod runtime;
pub mod server;
pub mod shard;
pub mod transport;

pub use client::{PriorClient, RetryPolicy};
pub use crc32::{crc32, Crc32};
pub use error::{Result, ServeError};
pub use frame::{
    busy_frame_len, health_frame_len, health_report_frame_len, model_report_frame_len,
    ping_frame_len, prior_request_frame_len, prior_response_frame_len, report_ack_frame_len,
    shard_map_request_frame_len, shard_map_response_frame_len, ErrorCode, HealthStatus, Message,
    MessageRef, ParamsRef, ShardMapRef, ShardMapWire, DEFAULT_MAX_FRAME_LEN, FRAME_OVERHEAD,
    FRAME_VERSION, SHARD_ADDR_WIRE_LEN,
};
pub use resilience::{
    BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, StalePriorCache,
};
pub use runtime::{EdgeRuntime, EdgeRuntimeConfig, RuntimeCounters, RuntimeFit};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServeMetrics, LATENCY_BUCKETS};
pub use server::{
    InMemoryServer, PriorEntry, PriorServer, PriorView, ReportedModel, ResponseBytes, ServeConfig,
    ServerHandle, ServerState, ShardRoute, DEFAULT_REPORT_DEVICE_CAP, DEFAULT_REPORT_INBOX_CAP,
    MAX_ERROR_DETAIL_BYTES,
};
pub use shard::{
    default_shards, stable_shard_hash, HashRing, ShardConnector, ShardDirectory, ShardMap,
    ShardPlaneConfig, ShardedPriorPlane,
};
pub use transport::{
    read_step, write_step, Connector, FaultConfig, FaultCounts, FaultInjector, FaultyConnector,
    FaultyTransport, IoStep, Responder, TcpConnector, TcpTransport, Transport,
};
