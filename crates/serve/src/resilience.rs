//! Client-side resilience primitives: a circuit breaker and a stale-prior
//! cache.
//!
//! Both are driven by a *logical step clock* (one tick per fit attempt)
//! rather than wall time, so chaos tests can express "the breaker re-opens
//! for 4 steps" without sleeping, and two runs at the same seed make
//! bit-identical decisions.
//!
//! The breaker is the standard three-state machine:
//!
//! ```text
//!            N consecutive failures
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown (+ seeded jitter)
//!     │ probe succeeds                   ▼
//!     └─────────────────────────── HalfOpen
//!                                        │ probe fails
//!                                        └───────▶ Open (new cooldown)
//! ```
//!
//! While `Open`, calls are short-circuited without touching the network at
//! all — which also means the fault injector's RNG stream is not consumed,
//! keeping downstream fault schedules deterministic.

use dre_bayes::MixturePrior;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning for [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive *operation* failures (a whole retried exchange, not a
    /// single attempt) that trip the breaker open.
    pub failure_threshold: u32,
    /// Steps the breaker stays open before letting a probe through.
    pub cooldown_steps: u64,
    /// Extra cooldown drawn uniformly from `[0, cooldown_jitter]` per
    /// opening — seeded, so the probe schedule is deterministic.
    pub cooldown_jitter: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_steps: 4,
            cooldown_jitter: 2,
            seed: 0,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: every call goes through.
    Closed,
    /// Tripped: calls are short-circuited until the probe step.
    Open,
    /// Cooldown elapsed: exactly one probe call is in flight.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// One recorded state transition, for traces and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Logical step at which the transition happened.
    pub step: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// A deterministic, step-clocked circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// First step at which an `Open` breaker lets a probe through.
    probe_at: u64,
    jitter: StdRng,
    transitions: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        let jitter = StdRng::seed_from_u64(config.seed);
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_at: 0,
            jitter,
            transitions: Vec::new(),
        }
    }

    /// Current state (after any `Open` → `HalfOpen` promotion that a call
    /// to [`CircuitBreaker::allow`] at this step would perform).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every state transition so far, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Number of times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.transitions
            .iter()
            .filter(|t| t.to == BreakerState::Open)
            .count() as u64
    }

    /// Number of times the breaker re-closed.
    pub fn closes(&self) -> u64 {
        self.transitions
            .iter()
            .filter(|t| t.to == BreakerState::Closed)
            .count() as u64
    }

    /// Whether a call may proceed at `step`. An `Open` breaker whose
    /// cooldown has elapsed moves to `HalfOpen` and admits the probe.
    pub fn allow(&mut self, step: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if step >= self.probe_at {
                    self.transition(step, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful operation: a half-open probe (or a closed-state
    /// success) resets the failure count and closes the breaker.
    pub fn on_success(&mut self, step: u64) {
        self.consecutive_failures = 0;
        if self.state != BreakerState::Closed {
            self.transition(step, BreakerState::Closed);
        }
    }

    /// Records a failed operation: a failed probe re-opens immediately; in
    /// `Closed`, the breaker opens once the consecutive-failure threshold
    /// is reached.
    pub fn on_failure(&mut self, step: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let should_open = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                self.consecutive_failures >= self.config.failure_threshold.max(1)
            }
            BreakerState::Open => false,
        };
        if should_open {
            let jitter = if self.config.cooldown_jitter == 0 {
                0
            } else {
                self.jitter.gen_range(0..self.config.cooldown_jitter + 1)
            };
            self.probe_at = step + self.config.cooldown_steps.max(1) + jitter;
            self.transition(step, BreakerState::Open);
        }
    }

    fn transition(&mut self, step: u64, to: BreakerState) {
        let from = self.state;
        self.state = to;
        self.transitions.push(BreakerTransition { step, from, to });
    }
}

/// The last good prior with its fetch step, served while the breaker is
/// open — with a TTL so the runtime eventually admits the prior is too old
/// to trust and degrades to local-only.
#[derive(Debug)]
pub struct StalePriorCache {
    ttl: u64,
    entry: Option<(u64, MixturePrior)>,
    hits: u64,
    misses: u64,
    expiries: u64,
}

impl StalePriorCache {
    /// An empty cache whose entries expire `ttl` steps after their fetch.
    pub fn new(ttl: u64) -> Self {
        StalePriorCache {
            ttl,
            entry: None,
            hits: 0,
            misses: 0,
            expiries: 0,
        }
    }

    /// Stores the prior fetched at `step`, replacing any older entry.
    pub fn put(&mut self, step: u64, prior: MixturePrior) {
        self.entry = Some((step, prior));
    }

    /// The cached prior and its age in steps, if present and within TTL.
    /// An over-TTL entry is evicted (counted as an expiry), not served.
    pub fn get(&mut self, step: u64) -> Option<(MixturePrior, u64)> {
        match &self.entry {
            Some((fetched_at, prior)) => {
                let age = step.saturating_sub(*fetched_at);
                if age > self.ttl {
                    self.entry = None;
                    self.expiries += 1;
                    self.misses += 1;
                    None
                } else {
                    self.hits += 1;
                    Some((prior.clone(), age))
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Age of the cached entry at `step` without touching hit/miss
    /// accounting; `None` when empty.
    pub fn age(&self, step: u64) -> Option<u64> {
        self.entry
            .as_ref()
            .map(|(fetched_at, _)| step.saturating_sub(*fetched_at))
    }

    /// (hits, misses, expiries) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.expiries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dre_linalg::Matrix;

    fn tiny_prior() -> MixturePrior {
        MixturePrior::new(vec![(1.0, vec![0.0, 0.0], Matrix::identity(2))]).unwrap()
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_deterministically() {
        let config = BreakerConfig {
            failure_threshold: 3,
            cooldown_steps: 4,
            cooldown_jitter: 2,
            seed: 17,
        };
        let run = || {
            let mut b = CircuitBreaker::new(config.clone());
            let mut decisions = Vec::new();
            for step in 0..30 {
                let allowed = b.allow(step);
                decisions.push((step, allowed, b.state()));
                if allowed {
                    b.on_failure(step); // the link stays dead throughout
                }
            }
            (decisions, b.transitions().to_vec())
        };
        let (decisions, transitions) = run();
        let (decisions_b, transitions_b) = run();
        assert_eq!(decisions, decisions_b, "same seed, same probe schedule");
        assert_eq!(transitions, transitions_b);

        // Closed for the first `threshold` failures, then open.
        assert!(decisions[..3].iter().all(|&(_, allowed, _)| allowed));
        assert_eq!(transitions[0].step, 2);
        assert_eq!(transitions[0].to, BreakerState::Open);
        // While open, no probe before the cooldown floor elapses.
        for &(step, allowed, _) in &decisions[3..] {
            if allowed {
                assert!(
                    step >= transitions[0].step + config.cooldown_steps,
                    "probe at step {step} beat the cooldown"
                );
                break;
            }
        }
        // Every admitted probe fails → HalfOpen → Open pairs forever after.
        let reopens = transitions
            .iter()
            .skip(1)
            .filter(|t| t.to == BreakerState::Open)
            .count();
        assert!(reopens >= 2, "probes must keep re-opening on failure");
        assert!(transitions
            .iter()
            .all(|t| t.to != BreakerState::Closed), "link never healed");
    }

    #[test]
    fn breaker_recloses_on_successful_probe() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_steps: 2,
            cooldown_jitter: 0,
            seed: 0,
        });
        assert!(b.allow(0));
        b.on_failure(0); // trips immediately (threshold 1)
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(1), "cooldown not elapsed");
        assert!(b.allow(2), "probe admitted at cooldown");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success(2);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.closes(), 1);
        // Fully healthy afterwards.
        assert!(b.allow(3));
        b.on_success(3);
        assert_eq!(b.transitions().len(), 3); // Open, HalfOpen, Closed
    }

    #[test]
    fn stale_cache_serves_within_ttl_and_expires_after() {
        let mut cache = StalePriorCache::new(3);
        assert!(cache.get(0).is_none()); // miss on empty
        cache.put(5, tiny_prior());
        let (_, age) = cache.get(6).expect("within TTL");
        assert_eq!(age, 1);
        let (_, age) = cache.get(8).expect("at TTL boundary");
        assert_eq!(age, 3);
        assert_eq!(cache.age(8), Some(3));
        assert!(cache.get(9).is_none(), "over TTL must expire");
        assert!(cache.get(9).is_none(), "expired entry is evicted");
        assert_eq!(cache.stats(), (2, 3, 1));
        // A fresh put revives the cache.
        cache.put(10, tiny_prior());
        assert!(cache.get(10).is_some());
    }
}
