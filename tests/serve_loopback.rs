//! End-to-end tests of the serving layer: a real TCP loopback server with
//! concurrent edge clients running the learning pipeline, and the same
//! client driven through the deterministic fault-injection transport.

use std::sync::Arc;
use std::time::Duration;

use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_prob::seeded_rng;
use dre_serve::{
    frame, FaultConfig, FaultInjector, FaultyConnector, InMemoryServer, PriorClient, PriorServer,
    RetryPolicy, ServeConfig, ServerState, TcpConnector, TcpTransport,
};
use dro_edge::{CloudKnowledge, EdgeLearner, EdgeLearnerConfig};

const TASK_ID: u64 = 1;

fn fitted_cloud() -> (CloudKnowledge, TaskFamily) {
    let mut rng = seeded_rng(4242);
    let family = TaskFamily::generate(
        &TaskFamilyConfig {
            dim: 4,
            num_clusters: 2,
            ..TaskFamilyConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let cloud = CloudKnowledge::from_family(&family, 16, 200, 1.0, &mut rng).unwrap();
    (cloud, family)
}

/// A fast learner config for test-sized fits.
fn small_learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        em_rounds: 3,
        solver_iters: 40,
        multi_start: false,
        ..EdgeLearnerConfig::default()
    }
}

#[test]
fn loopback_fleet_fetches_priors_and_fits_concurrently() {
    let (cloud, family) = fitted_cloud();
    let prior = cloud.prior().clone();
    let k = prior.num_components();
    let expected_payload = dro_edge::transfer::serialize_prior(&prior);

    let mut server = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    server.register_prior(TASK_ID, &prior);
    let addr = server.addr();

    const CLIENTS: usize = 5;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let family = family.clone();
            std::thread::spawn(move || {
                let mut client =
                    PriorClient::new(TcpConnector::new(addr), RetryPolicy::default());
                client.ping().expect("server must answer pings");

                // Fetch the prior over real TCP and check it survived.
                let fetched = client.fetch_prior(TASK_ID).expect("prior fetch");
                assert_eq!(fetched.num_components(), k);
                assert_eq!(fetched.dim(), 5); // packed: 4 features + bias

                // Run one EM fit against local few-shot data.
                let mut rng = seeded_rng(9_000 + i as u64);
                let task = family.sample_task(&mut rng);
                let train = task.generate(25, &mut rng);
                let fit = EdgeLearner::new(small_learner_config(), fetched)
                    .unwrap()
                    .fit(&train)
                    .expect("EM fit");
                assert!(fit.robust_risk.is_finite());

                // Report the fitted model back to the cloud.
                let params = fit.model.to_packed();
                assert!(client
                    .report_model(TASK_ID, i as u64, 1, params.clone())
                    .expect("report"));
                (client.metrics(), params)
            })
        })
        .collect();

    let mut total_client_bytes_out = 0;
    let mut total_client_bytes_in = 0;
    for h in handles {
        let (metrics, params) = h.join().expect("client thread");
        assert_eq!(metrics.requests, 3); // ping + fetch + report
        assert_eq!(metrics.responses_ok, 3);
        assert_eq!(metrics.errors, 0);
        assert_eq!(params.len(), 5); // dim 4 features + bias
        total_client_bytes_out += metrics.bytes_out;
        total_client_bytes_in += metrics.bytes_in;
    }

    // Server-side accounting agrees with the clients byte-for-byte.
    let m = server.metrics();
    assert_eq!(m.requests, 3 * CLIENTS as u64);
    assert_eq!(m.responses_ok, 3 * CLIENTS as u64);
    assert_eq!(m.bytes_in, total_client_bytes_out);
    assert_eq!(m.bytes_out, total_client_bytes_in);
    assert!(m.connections >= 3 * CLIENTS as u64);
    assert_eq!(m.latency_count(), 3 * CLIENTS as u64);

    // Every device's report arrived; this harness consumes them exactly
    // once, so it drains rather than cloning the inbox.
    let reports = server.take_reports();
    assert_eq!(reports.len(), CLIENTS);
    assert!(reports.iter().all(|r| r.task_id == TASK_ID));
    assert!(server.take_reports().is_empty(), "the drain must empty the inbox");

    // The measured prior frame is exactly what the simulator charges: the
    // prior lives over packed parameters (feature dim 4 + bias = 5).
    let response_frame = frame::encode(&frame::Message::PriorResponse {
        payload: expected_payload,
    });
    assert_eq!(
        response_frame.len() as u64,
        dre_edgesim::prior_transfer_bytes(k, 4)
    );

    server.shutdown();
}

#[test]
fn keepalive_fleet_reuses_one_connection_per_device_and_hits_the_frame_cache() {
    let (cloud, _) = fitted_cloud();
    let prior = cloud.prior().clone();

    let mut server = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    server.register_prior(TASK_ID, &prior);
    let addr = server.addr();

    const CLIENTS: usize = 5;
    const REQUESTS: u64 = 3; // ping + fetch + report
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client =
                    PriorClient::new(TcpConnector::new(addr), RetryPolicy::default())
                        .keep_alive(true);
                client.ping().expect("server must answer pings");
                let fetched = client.fetch_prior(TASK_ID).expect("prior fetch");
                client
                    .report_model(TASK_ID, i as u64, 1, vec![i as f64; fetched.dim()])
                    .expect("report");
                assert!(client.has_live_stream(), "stream must survive the round");
                client.metrics()
            })
        })
        .collect();

    let mut total_client_bytes_out = 0;
    let mut total_client_bytes_in = 0;
    for h in handles {
        let metrics = h.join().expect("client thread");
        // The whole round rides one connection: connect once, reuse twice.
        assert_eq!(metrics.connections, 1);
        assert_eq!(metrics.reused_connections, REQUESTS - 1);
        assert_eq!(metrics.requests, REQUESTS);
        assert_eq!(metrics.responses_ok, REQUESTS);
        assert_eq!(metrics.errors, 0);
        total_client_bytes_out += metrics.bytes_out;
        total_client_bytes_in += metrics.bytes_in;
    }

    // Byte accounting stays exact under reuse, and every prior fetch was
    // served from the pre-encoded frame cache — no per-request encode.
    let m = server.metrics();
    assert_eq!(m.requests, REQUESTS * CLIENTS as u64);
    assert_eq!(m.responses_ok, REQUESTS * CLIENTS as u64);
    assert_eq!(m.bytes_in, total_client_bytes_out);
    assert_eq!(m.bytes_out, total_client_bytes_in);
    assert_eq!(m.prior_cache_hits, CLIENTS as u64);
    assert_eq!(m.prior_cache_builds, 1);
    assert_eq!(m.latency_count(), REQUESTS * CLIENTS as u64);
    // One TCP connection per device, not one per request.
    assert_eq!(m.connections, CLIENTS as u64);

    server.shutdown();
}

#[test]
fn keepalive_stream_survives_server_kill_and_restart_via_retry() {
    let (cloud, family) = fitted_cloud();
    let prior = cloud.prior().clone();
    let payload = dro_edge::transfer::serialize_prior(&prior);
    let serve_config = ServeConfig {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    };

    let mut server = PriorServer::bind("127.0.0.1:0", serve_config.clone()).unwrap();
    server.state().register_payload(TASK_ID, payload.clone());
    let addr = server.addr();

    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 5,
    };
    let mut client = PriorClient::new(TcpConnector::new(addr), policy.clone()).keep_alive(true);
    assert_eq!(client.fetch_prior_payload(TASK_ID).unwrap(), payload);
    assert_eq!(client.fetch_prior_payload(TASK_ID).unwrap(), payload);
    assert!(client.has_live_stream());

    // A runtime device shares the link mode; its breaker is Closed after a
    // healthy fresh-prior fit.
    let mut runtime = dre_serve::EdgeRuntime::new(
        TcpConnector::new(addr),
        policy.clone(),
        dre_serve::EdgeRuntimeConfig {
            task_id: TASK_ID,
            learner: small_learner_config(),
            keep_alive: true,
            ..dre_serve::EdgeRuntimeConfig::default()
        },
    );
    let mut rng = seeded_rng(31);
    let train = family.sample_task(&mut rng).generate(25, &mut rng);
    let fit = runtime.fit_step(&train).unwrap();
    assert_eq!(fit.mode, dro_edge::FitMode::FreshPrior);

    // Kill the server, then restart it on the same port.
    server.shutdown();
    drop(server);
    let mut restarted = None;
    for _ in 0..100 {
        match PriorServer::bind(&addr.to_string(), serve_config.clone()) {
            Ok(s) => {
                restarted = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut restarted = restarted.expect("could not rebind the server port");
    restarted.state().register_payload(TASK_ID, payload.clone());

    // The held stream is dead. Reusing it fails mid-frame, the failure is
    // retryable, and the retry's fresh connect reaches the new server —
    // the fetch still succeeds.
    let before = client.metrics();
    assert_eq!(client.fetch_prior_payload(TASK_ID).unwrap(), payload);
    let after = client.metrics();
    assert!(after.retries > before.retries, "reconnect must cost a retry");
    assert_eq!(
        after.connections,
        before.connections + 1,
        "exactly one fresh connect"
    );
    assert!(client.has_live_stream(), "the new stream is held again");
    // And the fresh stream is reused from then on.
    assert_eq!(client.fetch_prior_payload(TASK_ID).unwrap(), payload);
    assert_eq!(client.metrics().connections, after.connections);

    // The runtime device recovers the same way: a fresh-prior fit through
    // the retry, with breaker counters consistent — reconnection is a
    // retry, not an outage, so the breaker never opens.
    let fit = runtime.fit_step(&train).unwrap();
    assert_eq!(fit.mode, dro_edge::FitMode::FreshPrior);
    assert_eq!(
        runtime.breaker().state(),
        dre_serve::BreakerState::Closed,
        "a reconnect absorbed by the retry budget must not trip the breaker"
    );
    assert_eq!(runtime.breaker().opens(), 0);
    assert_eq!(runtime.counters().fetch_failures, 0);
    assert_eq!(runtime.counters().short_circuits, 0);
    assert!(runtime.client().metrics().reused_connections >= 1);

    restarted.shutdown();
}

#[test]
fn faulty_transport_recovers_within_the_retry_budget() {
    let (cloud, _) = fitted_cloud();
    let prior = cloud.prior().clone();
    let expected_payload = dro_edge::transfer::serialize_prior(&prior);

    let faults = FaultConfig {
        drop_prob: 0.2,
        truncate_prob: 0.2,
        corrupt_prob: 0.2,
        delay_prob: 0.1,
        delay: Duration::from_micros(200),
        ..FaultConfig::default()
    };
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        jitter_seed: 11,
    };

    let run = || {
        let state = Arc::new(ServerState::new());
        state.register_payload(TASK_ID, expected_payload.clone());
        let connector = FaultyConnector::new(
            InMemoryServer::with_state(Arc::clone(&state)),
            FaultInjector::new(2024, faults.clone()),
        );
        let mut client = PriorClient::new(connector, policy.clone());
        for _ in 0..20 {
            // Every fetch must succeed within the retry budget, and the
            // delivered payload must be byte-identical to what the server
            // registered — zero checksum-corrupted payloads get through.
            let payload = client.fetch_prior_payload(TASK_ID).expect("within budget");
            assert_eq!(payload, expected_payload);
        }
        let fault_counts = client.connector().fault_counts();
        (client.metrics(), fault_counts, state.metrics())
    };

    let (client_a, faults_a, server_a) = run();
    let (client_b, faults_b, server_b) = run();

    // The adverse paths actually ran…
    assert!(faults_a.drops > 0, "drop path never exercised");
    assert!(faults_a.truncations > 0, "truncation path never exercised");
    assert!(faults_a.bit_flips > 0, "bit-flip path never exercised");
    assert!(client_a.retries > 0, "no retry was ever needed");
    assert_eq!(client_a.responses_ok, 20);
    assert_eq!(client_a.errors, 0);

    // …and the whole scenario is deterministic across runs (wall-clock
    // latency histograms excluded).
    assert_eq!(faults_a, faults_b);
    assert_eq!(
        client_a.deterministic_counters(),
        client_b.deterministic_counters()
    );
    assert_eq!(
        server_a.deterministic_counters(),
        server_b.deterministic_counters()
    );
}

#[test]
fn burst_beyond_queue_bound_is_shed_with_busy_and_no_worker_wedges() {
    // One worker, one queue slot: a connection that never speaks parks the
    // worker, a second fills the queue, and everything past that must be
    // shed with `Busy` — never queued unboundedly, never wedging a worker.
    let config = ServeConfig {
        workers: 1,
        queue_bound: 1,
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        busy_retry_after: Duration::from_millis(7),
        ..ServeConfig::default()
    };
    let mut server = PriorServer::bind("127.0.0.1:0", config).unwrap();
    server.state().register_payload(TASK_ID, vec![3, 1, 4]);
    let addr = server.addr();

    // The squatter: connects, says nothing, holds the single worker.
    let squatter = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150)); // worker picks it up

    // The queue filler: sends a request that will only be answered once
    // the squatter releases the worker.
    let mut queued = TcpTransport::with_deadlines(
        std::net::TcpStream::connect(addr).unwrap(),
        Some(Duration::from_secs(5)),
        Some(Duration::from_secs(2)),
    )
    .unwrap();
    frame::write_frame(&mut queued, &frame::Message::Ping).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // accept loop queues it

    // The burst: every further connection gets an immediate `Busy` reply
    // carrying the configured retry-after hint, then a hangup.
    const BURST: usize = 3;
    for _ in 0..BURST {
        let mut t = TcpTransport::with_deadlines(
            std::net::TcpStream::connect(addr).unwrap(),
            Some(Duration::from_secs(2)),
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        frame::write_frame(&mut t, &frame::Message::PriorRequest { task_id: TASK_ID }).unwrap();
        let (reply, _) = frame::read_frame(&mut t, dre_serve::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(reply, frame::Message::Busy { retry_after_ms: 7 });
    }

    // A retrying client sees the same shedding as a typed, retryable error
    // once its budget runs out mid-overload.
    let mut impatient = PriorClient::new(TcpConnector::new(addr), RetryPolicy::no_retries());
    let err = impatient.ping().unwrap_err();
    match err {
        dre_serve::ServeError::RetriesExhausted { last, .. } => {
            assert!(
                matches!(*last, dre_serve::ServeError::Busy { retry_after }
                    if retry_after == Duration::from_millis(7)),
                "overload must surface as Busy with the server's hint"
            );
        }
        other => panic!("expected RetriesExhausted over Busy, got {other}"),
    }
    assert_eq!(impatient.metrics().busy, 1);

    // Release the worker: the queued connection drains and is answered —
    // the worker was waiting, not wedged.
    drop(squatter);
    let (reply, _) = frame::read_frame(&mut queued, dre_serve::DEFAULT_MAX_FRAME_LEN).unwrap();
    assert_eq!(reply, frame::Message::Ping);
    drop(queued);

    // With the overload gone, a fresh client is served normally again.
    let mut after = PriorClient::new(TcpConnector::new(addr), RetryPolicy::default());
    assert_eq!(after.fetch_prior_payload(TASK_ID).unwrap(), vec![3, 1, 4]);

    let m = server.metrics();
    assert!(
        m.shed_connections >= (BURST + 1) as u64,
        "burst connections must be shed, got {}",
        m.shed_connections
    );
    assert!(m.busy >= (BURST + 1) as u64, "busy replies: {}", m.busy);
    // Shutdown joins every thread — a wedged worker would hang here.
    server.shutdown();
}

#[test]
fn report_flood_beyond_the_inbox_cap_sheds_with_exact_accounting() {
    // A tiny cap + a flood over real TCP: every report is acknowledged
    // (the device-side leg never fails), the kept prefix is exactly the
    // first `cap` reports in arrival order, the overflow is counted in
    // `reports_shed`, and draining re-opens the admission window.
    const CAP: usize = 3;
    const FLOOD: usize = 10;
    let config = ServeConfig {
        report_inbox_cap: CAP,
        ..ServeConfig::default()
    };
    let mut server = PriorServer::bind("127.0.0.1:0", config).unwrap();
    let mut client = PriorClient::new(
        TcpConnector::new(server.addr()),
        RetryPolicy::no_retries(),
    )
    .keep_alive(true);

    for i in 0..FLOOD {
        let accepted = client
            .report_model(TASK_ID, 0, i as u64 + 1, vec![i as f64; 4])
            .expect("a shed report must still be acknowledged");
        assert_eq!(accepted, i < CAP, "shed reports carry a rejected ack");
    }
    let m = server.metrics();
    assert_eq!(m.requests, FLOOD as u64);
    assert_eq!(m.responses_ok, FLOOD as u64, "shedding is not an error");
    assert_eq!(m.errors, 0);
    assert_eq!(m.reports_shed, (FLOOD - CAP) as u64);

    let kept = server.take_reports();
    assert_eq!(kept.len(), CAP);
    for (i, r) in kept.iter().enumerate() {
        assert_eq!(r.params, vec![i as f64; 4], "kept prefix must be in order");
    }

    // The drain freed the window: the next report is kept, not shed.
    assert!(client
        .report_model(TASK_ID, 0, FLOOD as u64 + 1, vec![42.0; 4])
        .unwrap());
    assert_eq!(server.take_reports().len(), 1);
    assert_eq!(server.metrics().reports_shed, (FLOOD - CAP) as u64);
    server.shutdown();
}

#[test]
fn loopback_server_answers_protocol_errors_without_dying() {
    let mut server = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = PriorClient::new(
        TcpConnector::new(server.addr()),
        RetryPolicy::no_retries(),
    );
    // Unknown task → typed remote error, fatal (no retries consumed).
    let err = client.fetch_prior(77).unwrap_err();
    assert!(matches!(
        err,
        dre_serve::ServeError::Remote {
            code: dre_serve::ErrorCode::UnknownTask,
            ..
        }
    ));
    // The connection-handling loop survives: a follow-up ping succeeds.
    client.ping().unwrap();
    assert_eq!(client.metrics().retries, 0);
    server.shutdown();
}

#[test]
fn two_workers_multiplex_a_thousand_keepalive_connections() {
    // Far more connections than workers: the readiness-polled event loops
    // must multiplex them all, with exact request/response accounting.
    const CONNS: usize = 1000;
    const ROUNDS: usize = 2;
    let payload = vec![0xA5u8; 96];
    let expected = frame::encode(&frame::Message::PriorResponse {
        payload: payload.clone(),
    });

    let config = ServeConfig {
        workers: 2,
        max_connections: Some(CONNS + 8),
        read_timeout: Some(Duration::from_secs(60)),
        write_timeout: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    };
    let mut server = PriorServer::bind("127.0.0.1:0", config).unwrap();
    server.state().register_payload(TASK_ID, payload);
    let addr = server.addr();

    let mut streams: Vec<_> = (0..CONNS)
        .map(|_| {
            TcpTransport::with_deadlines(
                std::net::TcpStream::connect(addr).unwrap(),
                Some(Duration::from_secs(60)),
                Some(Duration::from_secs(60)),
            )
            .unwrap()
        })
        .collect();

    // Every connection stays open across rounds; each round touches every
    // stream so all of them are live in the workers' poll sets at once.
    for _ in 0..ROUNDS {
        for t in &mut streams {
            frame::write_frame(&mut *t, &frame::Message::PriorRequest { task_id: TASK_ID })
                .unwrap();
        }
        for t in &mut streams {
            let (reply, _) =
                frame::read_frame(&mut *t, dre_serve::DEFAULT_MAX_FRAME_LEN).unwrap();
            assert_eq!(frame::encode(&reply), expected, "reply must match a fresh encode");
            match reply {
                frame::Message::PriorResponse { payload: p } => {
                    assert_eq!(p.len(), 96);
                    assert!(p.iter().all(|&b| b == 0xA5), "corrupted payload observed");
                }
                other => panic!("expected PriorResponse, got {other:?}"),
            }
        }
    }
    drop(streams);

    let m = server.metrics();
    assert_eq!(m.connections, CONNS as u64, "every connection admitted");
    assert_eq!(m.shed_connections, 0, "nothing shed under the raised cap");
    assert_eq!(m.requests, (CONNS * ROUNDS) as u64, "exact request count");
    assert_eq!(m.responses_ok, (CONNS * ROUNDS) as u64);
    assert_eq!(m.prior_cache_hits, (CONNS * ROUNDS) as u64);
    assert_eq!(m.errors, 0);
    assert_eq!(m.busy, 0);
    assert_eq!(m.checksum_failures, 0);
    server.shutdown();
}

#[test]
fn pipelined_burst_is_answered_in_order_with_coalesced_writes() {
    const BURST: usize = 64;
    let payload = vec![0x5Au8; 48];
    let expected = frame::encode(&frame::Message::PriorResponse {
        payload: payload.clone(),
    });

    let config = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let mut server = PriorServer::bind("127.0.0.1:0", config).unwrap();
    server.state().register_payload(TASK_ID, payload);

    let mut t = TcpTransport::with_deadlines(
        std::net::TcpStream::connect(server.addr()).unwrap(),
        Some(Duration::from_secs(10)),
        Some(Duration::from_secs(10)),
    )
    .unwrap();
    // One write carrying BURST back-to-back requests…
    let one_request = frame::encode(&frame::Message::PriorRequest { task_id: TASK_ID });
    let mut burst = Vec::with_capacity(one_request.len() * BURST);
    for _ in 0..BURST {
        burst.extend_from_slice(&one_request);
    }
    use dre_serve::Transport as _;
    t.send(&burst).unwrap();
    // …gets BURST in-order replies, every one byte-identical to a fresh
    // encode of the registered prior.
    for _ in 0..BURST {
        let (reply, _) = frame::read_frame(&mut t, dre_serve::DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(frame::encode(&reply), expected);
    }
    drop(t);

    let m = server.metrics();
    // Exact accounting: one connection, BURST requests, all cache hits…
    assert_eq!(m.connections, 1);
    assert_eq!(m.requests, BURST as u64);
    assert_eq!(m.responses_ok, BURST as u64);
    assert_eq!(m.prior_cache_hits, BURST as u64);
    assert_eq!(m.errors, 0);
    // …and the replies were not dribbled out one write per request: at
    // least one socket flush coalesced several pipelined replies.
    assert!(
        m.batched_writes > 0,
        "pipelined replies must coalesce into batched writes"
    );
    assert_eq!(
        m.bytes_in,
        (one_request.len() * BURST) as u64,
        "request byte accounting"
    );
    assert_eq!(
        m.bytes_out,
        (expected.len() * BURST) as u64,
        "response byte accounting"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Sharded prior plane
// ---------------------------------------------------------------------------

/// A fast retry policy for shard failover tests.
fn fast_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: seed,
    }
}

#[test]
fn sharded_plane_routes_every_task_to_its_owner() {
    let mut plane = dre_serve::ShardedPriorPlane::bind(dre_serve::ShardPlaneConfig {
        shards: 3,
        replication: 2,
        ..dre_serve::ShardPlaneConfig::default()
    })
    .unwrap();
    const TASKS: u64 = 12;
    for task in 0..TASKS {
        plane.register_payload(task, vec![task as u8; 16]);
    }

    let directory = plane.directory();
    for task in 0..TASKS {
        let mut client = directory.client_for(task, fast_policy(task));
        assert_eq!(
            client.fetch_prior_payload(task).unwrap(),
            vec![task as u8; 16]
        );
        let m = client.metrics();
        assert_eq!(m.retries, 0, "a routed fetch must land first try");
        assert_eq!(m.errors, 0);
    }

    // Direct routing means zero redirects and zero failovers anywhere…
    let routing = directory.metrics().snapshot();
    assert_eq!(routing.shard_failovers, 0);
    assert_eq!(routing.map_refreshes, 0);
    let mut cache_hits = 0;
    for i in 0..3 {
        let m = plane.shard_metrics(i).unwrap();
        assert_eq!(m.misroutes, 0, "shard {i} saw a misroute");
        cache_hits += m.prior_cache_hits;
    }
    // …and every fetch was served from an owner's pre-encoded frame cache.
    assert_eq!(cache_hits, TASKS);

    // Any member serves the epoch-stamped map, byte-equal across shards.
    let maps: Vec<_> = (0..3)
        .map(|i| {
            let mut c = PriorClient::new(
                TcpConnector::new(plane.addrs()[i]),
                RetryPolicy::no_retries(),
            );
            c.fetch_shard_map().unwrap()
        })
        .collect();
    assert_eq!(maps[0].epoch, plane.epoch());
    assert_eq!(maps[0], maps[1]);
    assert_eq!(maps[1], maps[2]);

    plane.shutdown();
}

#[test]
fn misrouted_request_is_a_retryable_redirect_and_recovers_in_one_retry() {
    // Replication 1: every task has exactly one owner, so a request sent
    // to any other shard is a guaranteed misroute.
    let mut plane = dre_serve::ShardedPriorPlane::bind(dre_serve::ShardPlaneConfig {
        shards: 2,
        replication: 1,
        ..dre_serve::ShardPlaneConfig::default()
    })
    .unwrap();
    plane.register_payload(TASK_ID, vec![7; 8]);
    let owner = plane.shard_map().owners(TASK_ID)[0];
    let wrong = 1 - owner;

    // Hitting the wrong shard directly: the reply is a retryable
    // Misrouted redirect — not a fatal UnknownTask.
    let mut naive = PriorClient::new(
        TcpConnector::new(plane.addrs()[wrong]),
        RetryPolicy::no_retries(),
    );
    match naive.fetch_prior_payload(TASK_ID).unwrap_err() {
        dre_serve::ServeError::RetriesExhausted { last, .. } => {
            assert!(
                matches!(*last, dre_serve::ServeError::Misrouted { task_id, .. }
                    if task_id == TASK_ID),
                "expected a Misrouted redirect, got {last}"
            );
            assert!(last.is_retryable(), "a redirect must be retryable");
        }
        other => panic!("expected RetriesExhausted over Misrouted, got {other}"),
    }
    assert_eq!(plane.shard_metrics(wrong).unwrap().misroutes, 1);

    // A routed client holding a stale map recovers within one retry: the
    // redirect triggers a map refresh, and the retry lands on the new
    // owner. Build the stale directory first, then rebalance underneath
    // it until the old owner genuinely loses the task.
    let stale = plane.directory();
    let mut moved_task = None;
    for task in 0..256u64 {
        plane.register_payload(task, vec![task as u8; 4]);
    }
    let _added = plane.add_shard().unwrap();
    for task in 0..256u64 {
        let old_owner = stale.map().owners(task)[0];
        if !plane.shard_map().owners(task).contains(&old_owner) {
            moved_task = Some(task);
            break;
        }
    }
    let task = moved_task.expect("rebalancing 256 tasks must move at least one");

    let mut client = stale.client_for(task, fast_policy(99));
    let misroutes_before: u64 = (0..plane.addrs().len())
        .filter_map(|i| plane.shard_metrics(i))
        .map(|m| m.misroutes)
        .sum();
    assert_eq!(client.fetch_prior_payload(task).unwrap(), vec![task as u8; 4]);
    // Exact accounting: one redirect served, one map refresh, one retry,
    // zero replica failovers, and the fetch still succeeded cleanly.
    let m = client.metrics();
    assert_eq!(m.retries, 1, "recovery must take exactly one retry");
    assert_eq!(m.responses_ok, 1);
    assert_eq!(m.errors, 0);
    let routing = stale.metrics().snapshot();
    assert_eq!(routing.map_refreshes, 1);
    assert_eq!(routing.shard_failovers, 0);
    let misroutes_after: u64 = (0..plane.addrs().len())
        .filter_map(|i| plane.shard_metrics(i))
        .map(|m| m.misroutes)
        .sum();
    assert_eq!(misroutes_after, misroutes_before + 1);
    assert_eq!(stale.epoch(), plane.epoch(), "the refresh adopted the new map");

    // The stream re-routed: follow-up fetches are direct, no new retries.
    assert_eq!(client.fetch_prior_payload(task).unwrap(), vec![task as u8; 4]);
    assert_eq!(client.metrics().retries, 1);

    plane.shutdown();
}

#[test]
fn routed_client_fails_over_to_the_replica_when_the_primary_dies() {
    let mut plane = dre_serve::ShardedPriorPlane::bind(dre_serve::ShardPlaneConfig {
        shards: 3,
        replication: 2,
        serve: ServeConfig {
            read_timeout: Some(Duration::from_secs(2)),
            write_timeout: Some(Duration::from_secs(2)),
            ..ServeConfig::default()
        },
        ..dre_serve::ShardPlaneConfig::default()
    })
    .unwrap();
    plane.register_payload(TASK_ID, vec![42; 24]);
    let owners = plane.shard_map().owners(TASK_ID);

    let directory = plane.directory();
    let mut client = directory.client_for(TASK_ID, fast_policy(17));
    assert_eq!(client.fetch_prior_payload(TASK_ID).unwrap(), vec![42; 24]);

    // Kill the primary: the next fetch fails over to the replica inside
    // the retry budget, counting exactly one failover.
    plane.kill_shard(owners[0]);
    assert_eq!(client.fetch_prior_payload(TASK_ID).unwrap(), vec![42; 24]);
    let m = client.metrics();
    assert!(m.retries >= 1, "failover must cost at least one retry");
    assert_eq!(m.errors, 0);
    let routing = directory.metrics().snapshot();
    assert!(routing.shard_failovers >= 1, "failover must be counted");
    assert_eq!(routing.map_refreshes, 0, "a dead shard is not a misroute");
    // The replica served the fetch from its byte-identical frame cache.
    assert!(plane.shard_metrics(owners[1]).unwrap().prior_cache_hits >= 1);

    // Restarting the primary replays its payloads; the plane heals.
    plane.restart_shard(owners[0]).unwrap();
    let entry = plane
        .handle(owners[0])
        .unwrap()
        .state()
        .prior_entry(TASK_ID)
        .expect("restart must replay owned payloads");
    assert_eq!(*entry.payload, vec![42; 24]);

    plane.shutdown();
}

#[test]
fn default_sized_plane_is_hit_clean_at_any_membership() {
    // CI drives this suite across DRE_SERVE_SHARDS ∈ {1, 4} (crossed with
    // DRE_SERVE_WORKERS ∈ {1, 4}): whatever plane size the environment
    // picks, a default-config plane must route every fetch straight to an
    // owner — zero retries, zero failovers, zero misroutes.
    let shards = dre_serve::default_shards().max(1);
    let mut plane =
        dre_serve::ShardedPriorPlane::bind(dre_serve::ShardPlaneConfig::default()).unwrap();
    assert_eq!(plane.addrs().len(), shards);

    const TASKS: u64 = 8;
    for task in 0..TASKS {
        plane.register_payload(task, vec![task as u8 ^ 0x5A; 24]);
    }
    let directory = plane.directory();
    for task in 0..TASKS {
        let mut client = directory.client_for(task, fast_policy(task));
        assert_eq!(
            client.fetch_prior_payload(task).unwrap(),
            vec![task as u8 ^ 0x5A; 24]
        );
        let m = client.metrics();
        assert_eq!(m.retries, 0, "task {task} needed a retry on a healthy plane");
        assert_eq!(m.errors, 0);
    }
    let routing = directory.metrics().snapshot();
    assert_eq!(routing.shard_failovers, 0);
    assert_eq!(routing.map_refreshes, 0);
    let mut cache_hits = 0;
    for i in 0..shards {
        let m = plane.shard_metrics(i).unwrap();
        assert_eq!(m.misroutes, 0, "shard {i} saw a misroute");
        cache_hits += m.prior_cache_hits;
    }
    assert_eq!(cache_hits, TASKS);
    plane.shutdown();
}

#[test]
fn unsharded_server_rejects_shard_map_requests_as_unexpected() {
    let mut server = PriorServer::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = PriorClient::new(
        TcpConnector::new(server.addr()),
        RetryPolicy::no_retries(),
    );
    let err = client.fetch_shard_map().unwrap_err();
    assert!(
        matches!(
            err,
            dre_serve::ServeError::Remote {
                code: dre_serve::ErrorCode::Unexpected,
                ..
            }
        ),
        "an unsharded server must answer map requests with a fatal error, got {err}"
    );
    // The server survives; normal traffic continues.
    client.ping().unwrap();
    server.shutdown();
}
