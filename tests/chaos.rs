//! Deterministic chaos harness for the graceful-degradation edge runtime.
//!
//! A small fleet of [`EdgeRuntime`] devices runs fetch→fit→report rounds
//! against a shared prior server while a seeded [`FaultInjector`] mangles
//! the link. The harness asserts the three load-bearing properties of the
//! degradation ladder:
//!
//! 1. **Floor** — fleet accuracy degrades toward the local-only ERM
//!    baseline as the fault rate rises and never falls below it; at fault
//!    rate 1.0 every device's model is *bit-identical* to the baseline.
//! 2. **Recovery** — after a hard partition heals (and after a real TCP
//!    server crash + restart), the circuit breaker re-closes and fresh-
//!    prior accuracy returns to its pre-fault value, bit-for-bit.
//! 3. **Determinism** — at a fixed seed the whole scenario (mode traces,
//!    fault schedules, client/server counters, fitted parameters) is
//!    bit-identical across runs, checked at several seeds.
//!
//! Everything is driven by logical step clocks — breaker cooldowns and
//! partition windows never consult the wall clock — so the suite is exact,
//! not statistical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dre_data::{Dataset, TaskFamily, TaskFamilyConfig};
use dre_models::metrics;
use dre_prob::seeded_rng;
use dre_serve::{
    BreakerConfig, BreakerState, EdgeRuntime, EdgeRuntimeConfig, FaultConfig, FaultInjector,
    FaultyConnector, InMemoryServer, PriorServer, RetryPolicy, ServeConfig, ServerState,
    TcpConnector,
};
use dro_edge::{baselines, CloudKnowledge, EdgeLearnerConfig, FitMode, ModeShares};

const TASK_ID: u64 = 3;
const DEVICES: usize = 4;
const ERM_LAMBDA: f64 = 1e-3;

fn family_config() -> TaskFamilyConfig {
    TaskFamilyConfig {
        dim: 4,
        num_clusters: 2,
        cluster_separation: 4.0,
        within_cluster_std: 0.2,
        label_noise: 0.02,
        steepness: 3.0,
    }
}

/// One device's fixed few-shot training set and held-out evaluation set.
struct DeviceData {
    train: Dataset,
    test: Dataset,
}

/// The shared scenario: a fitted cloud prior and per-device datasets,
/// fixed across every fleet run so accuracy differences come only from
/// the degradation ladder.
struct Scenario {
    state: Arc<ServerState>,
    prior_payload: Vec<u8>,
    devices: Vec<DeviceData>,
}

fn scenario() -> Scenario {
    let mut rng = seeded_rng(7_400);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let cloud = CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng).unwrap();
    let prior_payload = dro_edge::transfer::serialize_prior(cloud.prior());
    let state = Arc::new(ServerState::new());
    state.register_payload(TASK_ID, prior_payload.clone());

    // The harness measures the *runtime's* degradation ladder, so the
    // fleet is drawn from tasks the cloud prior actually covers (the
    // paper's transfer setting): deterministically reject the occasional
    // sampled task where the prior misleads the few-shot fit — for those,
    // "fresh beats local" is not a property any runtime could restore.
    let mut devices = Vec::with_capacity(DEVICES);
    for _ in 0..50 {
        if devices.len() == DEVICES {
            break;
        }
        let task = family.sample_task(&mut rng);
        let train = task.generate(12, &mut rng);
        let test = task.generate(300, &mut rng);
        let erm = baselines::fit_local_erm(&train, ERM_LAMBDA).unwrap();
        let erm_acc = metrics::accuracy(&erm, test.features(), test.labels()).unwrap();
        let fit = dro_edge::EdgeLearner::new(learner_config(), cloud.prior().clone())
            .unwrap()
            .fit(&train)
            .unwrap();
        let dro_acc = metrics::accuracy(&fit.model, test.features(), test.labels()).unwrap();
        if dro_acc > erm_acc + 0.01 {
            devices.push(DeviceData { train, test });
        }
    }
    assert_eq!(devices.len(), DEVICES, "could not draw a prior-covered fleet");
    Scenario {
        state,
        prior_payload,
        devices,
    }
}

fn learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        em_rounds: 3,
        solver_iters: 40,
        multi_start: false,
        ..EdgeLearnerConfig::default()
    }
}

fn runtime_config(device_id: u64) -> EdgeRuntimeConfig {
    EdgeRuntimeConfig {
        task_id: TASK_ID,
        device_id,
        learner: learner_config(),
        erm_lambda: ERM_LAMBDA,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_steps: 1,
            cooldown_jitter: 0,
            seed: 0,
        },
        stale_ttl: 2,
        report_models: true,
        keep_alive: false,
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(100),
        jitter_seed: 5,
    }
}

/// Mixed drop/corrupt/delay faults at overall intensity `rate ∈ [0, 1]`.
fn faults_at(rate: f64) -> FaultConfig {
    FaultConfig {
        drop_prob: rate,
        corrupt_prob: rate * 0.5,
        delay_prob: rate * 0.25,
        delay: Duration::from_micros(50),
        ..FaultConfig::default()
    }
}

/// Everything a fleet run produces that must be seed-deterministic.
#[derive(Debug, PartialEq)]
struct FleetOutcome {
    /// Per-device mode trace over the rounds.
    mode_traces: Vec<Vec<FitMode>>,
    /// Per-device final fitted parameters (bit-exact).
    final_models: Vec<Vec<f64>>,
    /// Per-device runtime counters.
    counters: Vec<dre_serve::RuntimeCounters>,
    /// Per-device client-side deterministic transfer counters.
    client_counters: Vec<[u64; 25]>,
    /// Per-device injected-fault counts.
    fault_counts: Vec<dre_serve::FaultCounts>,
    /// Mean held-out accuracy over devices, per round.
    round_accuracy: Vec<f64>,
}

impl FleetOutcome {
    fn mean_accuracy(&self) -> f64 {
        self.round_accuracy.iter().sum::<f64>() / self.round_accuracy.len() as f64
    }

    fn mode_shares(&self) -> ModeShares {
        let mut shares = ModeShares::default();
        for trace in &self.mode_traces {
            for mode in trace {
                shares.push(*mode);
            }
        }
        shares
    }
}

/// Runs `rounds` fleet rounds of `DEVICES` runtimes over in-memory faulty
/// links, advancing each device's logical fault clock once per round.
fn run_fleet(sc: &Scenario, faults: &FaultConfig, seed: u64, rounds: usize) -> FleetOutcome {
    // Every invocation shares the scenario's `ServerState`, whose per-device
    // replay windows outlive the fleet. A fresh device-id block per run keeps
    // each fleet's seq-1 reports admissible, so identical seeds replay
    // bit-identically instead of tripping the replay guard.
    static DEVICE_BLOCK: AtomicU64 = AtomicU64::new(0);
    let base = DEVICE_BLOCK.fetch_add(DEVICES as u64, Ordering::Relaxed);
    let mut fleet: Vec<_> = (0..DEVICES)
        .map(|dev| {
            let connector = FaultyConnector::new(
                InMemoryServer::with_state(Arc::clone(&sc.state)),
                FaultInjector::new(seed.wrapping_mul(1_000) + dev as u64, faults.clone()),
            );
            EdgeRuntime::new(connector, fast_policy(), runtime_config(base + dev as u64))
        })
        .collect();

    let mut round_accuracy = Vec::with_capacity(rounds);
    let mut final_models = vec![Vec::new(); DEVICES];
    for _round in 0..rounds {
        let mut acc = 0.0;
        for (dev, rt) in fleet.iter_mut().enumerate() {
            let data = &sc.devices[dev];
            let fit = rt.fit_step(&data.train).expect("fit never hard-fails");
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
            final_models[dev] = fit.model.to_packed();
            rt.connector().advance_step();
        }
        round_accuracy.push(acc / DEVICES as f64);
    }

    FleetOutcome {
        mode_traces: fleet.iter().map(|rt| rt.mode_trace().to_vec()).collect(),
        final_models,
        counters: fleet.iter().map(|rt| rt.counters()).collect(),
        client_counters: fleet
            .iter()
            .map(|rt| rt.client().metrics().deterministic_counters())
            .collect(),
        fault_counts: fleet.iter().map(|rt| rt.connector().fault_counts()).collect(),
        round_accuracy,
    }
}

/// Mean held-out accuracy of the pure local-only ERM fleet over the first
/// `fleet_size` devices — the floor the degradation ladder must never sink
/// below.
fn local_only_floor(sc: &Scenario, fleet_size: usize) -> f64 {
    sc.devices[..fleet_size]
        .iter()
        .map(|d| {
            let erm = baselines::fit_local_erm(&d.train, ERM_LAMBDA).unwrap();
            metrics::accuracy(&erm, d.test.features(), d.test.labels()).unwrap()
        })
        .sum::<f64>()
        / fleet_size as f64
}

#[test]
fn accuracy_degrades_monotonically_and_never_below_the_local_floor() {
    let sc = scenario();
    let floor = local_only_floor(&sc, DEVICES);
    let rates = [0.0, 0.35, 0.7, 1.0];
    let outcomes: Vec<_> = rates
        .iter()
        .map(|&rate| run_fleet(&sc, &faults_at(rate), 1, 6))
        .collect();

    let mean_accs: Vec<f64> = outcomes.iter().map(FleetOutcome::mean_accuracy).collect();
    for (i, o) in outcomes.iter().enumerate() {
        // Floor: no round of any sweep point dips below local-only ERM.
        for (round, acc) in o.round_accuracy.iter().enumerate() {
            assert!(
                *acc >= floor - 1e-12,
                "rate {} round {round}: fleet accuracy {acc:.4} fell below \
                 the local-only floor {floor:.4}",
                rates[i]
            );
        }
        // Monotone degradation across the sweep (deterministic, so exact).
        if i > 0 {
            assert!(
                mean_accs[i] <= mean_accs[i - 1] + 1e-12,
                "accuracy must not rise with the fault rate: \
                 {:.4} @ {} vs {:.4} @ {}",
                mean_accs[i],
                rates[i],
                mean_accs[i - 1],
                rates[i - 1]
            );
            // The mode mix shifts the same way: strictly fewer fresh fits.
            assert!(
                outcomes[i].mode_shares().fresh <= outcomes[i - 1].mode_shares().fresh,
                "fresh-fit share must not rise with the fault rate"
            );
        }
    }

    // A healthy link is all fresh fits and clearly beats the floor.
    let healthy = &outcomes[0];
    assert_eq!(healthy.mode_shares().fresh, healthy.mode_shares().total());
    assert!(
        healthy.mean_accuracy() > floor + 0.02,
        "fresh-prior fleet ({:.4}) must clearly beat local-only ({floor:.4})",
        healthy.mean_accuracy()
    );

    // A fully dead link is the floor exactly: every device's model is
    // bit-identical to its local ERM baseline.
    let dead = &outcomes[3];
    assert_eq!(dead.mode_shares().local, dead.mode_shares().total());
    for (dev, packed) in dead.final_models.iter().enumerate() {
        let erm = baselines::fit_local_erm(&sc.devices[dev].train, ERM_LAMBDA).unwrap();
        assert_eq!(packed, &erm.to_packed(), "device {dev} is not at the floor");
    }
    assert!((dead.mean_accuracy() - floor).abs() < 1e-15);
}

#[test]
fn partition_then_heal_recloses_breakers_and_recovers_accuracy_bitwise() {
    let sc = scenario();
    let floor = local_only_floor(&sc, DEVICES);

    // 2 healthy rounds, a 3-round hard partition, then 3 healed rounds.
    // The partition window is expressed on the logical step clock (one
    // step per round), so the scenario needs no wall-clock sleeps.
    let mut fleet: Vec<_> = (0..DEVICES)
        .map(|dev| {
            let connector = FaultyConnector::new(
                InMemoryServer::with_state(Arc::clone(&sc.state)),
                FaultInjector::new(9_000 + dev as u64, FaultConfig::default()),
            );
            EdgeRuntime::new(connector, fast_policy(), runtime_config(dev as u64))
        })
        .collect();

    let mut per_round = Vec::new();
    for round in 0..8usize {
        if round == 2 {
            for rt in &fleet {
                rt.connector().partition_until(5); // steps 2, 3, 4 are dark
            }
        }
        let mut acc = 0.0;
        let mut models = Vec::new();
        for (dev, rt) in fleet.iter_mut().enumerate() {
            let data = &sc.devices[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
            models.push(fit.model.to_packed());
            rt.connector().advance_step();
        }
        per_round.push((acc / DEVICES as f64, models));
    }

    for (dev, rt) in fleet.iter().enumerate() {
        let trace = rt.mode_trace();
        // Healthy prefix, degraded middle, healed tail.
        assert_eq!(&trace[..2], &[FitMode::FreshPrior; 2], "device {dev}");
        assert!(
            trace[2..5].iter().all(|m| *m != FitMode::FreshPrior),
            "device {dev} fetched through the partition: {trace:?}"
        );
        // During the partition the ladder walks stale → local as the cache
        // ages past its TTL of 2.
        assert_eq!(trace[2], FitMode::StalePrior { age: 1 }, "device {dev}");
        assert!(
            trace[4] == FitMode::LocalOnly || matches!(trace[4], FitMode::StalePrior { .. }),
            "device {dev}: {trace:?}"
        );
        assert!(
            trace[5..].contains(&FitMode::FreshPrior),
            "device {dev} never recovered: {trace:?}"
        );
        assert_eq!(trace.last(), Some(&FitMode::FreshPrior), "device {dev}");
        // The breaker tripped during the partition and re-closed after it.
        assert!(rt.breaker().opens() >= 1, "device {dev} breaker never opened");
        assert!(rt.breaker().closes() >= 1, "device {dev} breaker never re-closed");
        assert_eq!(rt.breaker().state(), BreakerState::Closed, "device {dev}");
    }

    // Accuracy stayed at or above the floor throughout, and the healed
    // rounds reproduce the pre-partition fits bit-for-bit (same data, same
    // prior, deterministic solver).
    for (round, (acc, _)) in per_round.iter().enumerate() {
        assert!(*acc >= floor - 1e-12, "round {round} below the floor");
    }
    assert_eq!(per_round[7].1, per_round[1].1, "healed fits must be bit-identical");
    assert_eq!(per_round[7].0, per_round[1].0);
}

#[test]
fn chaos_fleets_are_bit_identical_across_runs_at_fixed_seeds() {
    let sc = scenario();
    for seed in [11, 29, 47] {
        let a = run_fleet(&sc, &faults_at(0.45), seed, 5);
        let b = run_fleet(&sc, &faults_at(0.45), seed, 5);
        assert_eq!(a, b, "seed {seed}: chaos run is not deterministic");
        // The schedule actually degraded something at this intensity…
        let shares = a.mode_shares();
        assert!(shares.fresh < shares.total(), "seed {seed}: no degradation");
        // …while other seeds genuinely differ (the harness is seeded, not
        // constant).
        if seed != 11 {
            let first = run_fleet(&sc, &faults_at(0.45), 11, 5);
            assert_ne!(
                first.fault_counts, a.fault_counts,
                "different seeds should draw different fault schedules"
            );
        }
    }
}

#[test]
fn sharded_fleet_survives_shard_kill_and_rebalance_bit_identically() {
    // The resharding chaos ladder: primary shard killed mid-fleet (clients
    // fail over to the replica), then a rebalance moves ownership under a
    // stale client map (redirects re-route it), then the dead shard
    // restarts and replays its payloads. Through all of it every fit must
    // stay FreshPrior at the healthy accuracy, and two runs of the whole
    // scenario at fixed seeds must agree bit-for-bit.
    let sc = scenario();
    let run = || {
        let mut plane = dre_serve::ShardedPriorPlane::bind(dre_serve::ShardPlaneConfig {
            shards: 3,
            replication: 2,
            serve: ServeConfig {
                read_timeout: Some(Duration::from_secs(2)),
                write_timeout: Some(Duration::from_secs(2)),
                ..ServeConfig::default()
            },
            ..dre_serve::ShardPlaneConfig::default()
        })
        .unwrap();
        plane.register_payload(TASK_ID, sc.prior_payload.clone());
        let owners = plane.shard_map().owners(TASK_ID);
        let directory = plane.directory();

        let mut fleet: Vec<_> = (0..2)
            .map(|dev| {
                let policy = RetryPolicy {
                    max_attempts: 4,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(4),
                    jitter_seed: 23 + dev as u64,
                };
                EdgeRuntime::new(
                    dre_serve::ShardConnector::new(Arc::clone(&directory), TASK_ID),
                    policy,
                    runtime_config(dev as u64),
                )
            })
            .collect();

        let round = |fleet: &mut Vec<EdgeRuntime<dre_serve::ShardConnector>>| -> f64 {
            let mut acc = 0.0;
            for (dev, rt) in fleet.iter_mut().enumerate() {
                let data = &sc.devices[dev];
                let fit = rt.fit_step(&data.train).unwrap();
                acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                    .unwrap();
            }
            acc / 2.0
        };

        let mut accs = Vec::new();
        accs.push(round(&mut fleet)); // healthy: direct to the primary
        plane.kill_shard(owners[0]); // primary dies; the map stays put
        accs.push(round(&mut fleet)); // failover to the replica
        accs.push(round(&mut fleet)); // replica keeps serving
        plane.add_shard().unwrap(); // rebalance: epoch bump + replay
        accs.push(round(&mut fleet)); // stale map re-routes via redirect
        plane.restart_shard(owners[0]).unwrap(); // heal: replay owned priors
        accs.push(round(&mut fleet));

        let traces: Vec<Vec<FitMode>> =
            fleet.iter().map(|rt| rt.mode_trace().to_vec()).collect();
        let counters: Vec<[u64; 25]> = fleet
            .iter()
            .map(|rt| rt.client().metrics().deterministic_counters())
            .collect();
        let retries: u64 = fleet.iter().map(|rt| rt.client().metrics().retries).sum();
        let routing = directory.metrics().snapshot();
        plane.shutdown();
        (
            traces,
            accs,
            counters,
            retries,
            (routing.shard_failovers, routing.map_refreshes),
        )
    };

    let a = run();
    let b = run();
    assert_eq!(a, b, "the resharding chaos scenario is not deterministic");

    let (traces, accs, _counters, retries, (failovers, _refreshes)) = a;
    // The ladder never degraded: failover and re-routing kept every fit
    // fresh, at exactly the healthy accuracy.
    for (dev, trace) in traces.iter().enumerate() {
        assert_eq!(trace.len(), 5, "device {dev}");
        assert!(
            trace.iter().all(|m| *m == FitMode::FreshPrior),
            "device {dev} degraded through resharding: {trace:?}"
        );
    }
    for (r, acc) in accs.iter().enumerate() {
        assert_eq!(*acc, accs[0], "round {r} accuracy drifted across resharding");
    }
    // The adverse paths actually ran: the dead primary cost retries and
    // replica failovers.
    assert!(retries >= 1, "killing the primary must cost at least one retry");
    assert!(failovers >= 1, "replica failover was never exercised");
}

#[test]
fn server_crash_and_restart_mid_fleet_recovers_over_tcp() {
    let sc = scenario();
    let floor = local_only_floor(&sc, 2);
    let serve_config = ServeConfig {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    };
    let mut server = PriorServer::bind("127.0.0.1:0", serve_config.clone()).unwrap();
    let addr = server.addr();
    server.state().register_payload(TASK_ID, sc.prior_payload.clone());

    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 17,
    };
    let mut fleet: Vec<_> = (0..2)
        .map(|dev| EdgeRuntime::new(TcpConnector::new(addr), policy.clone(), runtime_config(dev)))
        .collect();

    let round = |fleet: &mut Vec<EdgeRuntime<TcpConnector>>| -> (f64, Vec<FitMode>) {
        let mut acc = 0.0;
        let mut modes = Vec::new();
        for (dev, rt) in fleet.iter_mut().enumerate() {
            let data = &sc.devices[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
            modes.push(fit.mode);
        }
        (acc / 2.0, modes)
    };

    // Two healthy rounds.
    let (healthy_acc, modes) = round(&mut fleet);
    assert!(modes.iter().all(|m| *m == FitMode::FreshPrior));
    round(&mut fleet);

    // Crash: the server goes away mid-fleet. Devices degrade but keep
    // serving fits at or above the local-only floor.
    server.shutdown();
    drop(server);
    for _ in 0..3 {
        let (acc, modes) = round(&mut fleet);
        assert!(modes.iter().all(|m| *m != FitMode::FreshPrior));
        assert!(acc >= floor - 1e-12);
    }

    // Restart on the same port (retry briefly in case the OS lags
    // releasing the listener address).
    let mut restarted = None;
    for _ in 0..100 {
        match PriorServer::bind(&addr.to_string(), serve_config.clone()) {
            Ok(s) => {
                restarted = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut restarted = restarted.expect("could not rebind the server port");
    restarted
        .state()
        .register_payload(TASK_ID, sc.prior_payload.clone());

    // The fleet recovers: breakers re-close, fresh fits return, and the
    // healed accuracy is bit-identical to the healthy rounds.
    let mut recovered = false;
    let mut healed_acc = 0.0;
    for _ in 0..4 {
        let (acc, modes) = round(&mut fleet);
        if modes.iter().all(|m| *m == FitMode::FreshPrior) {
            recovered = true;
            healed_acc = acc;
            break;
        }
    }
    assert!(recovered, "fleet never returned to fresh-prior fits");
    assert_eq!(healed_acc, healthy_acc, "healed accuracy must match pre-crash");
    for rt in &fleet {
        assert_eq!(rt.breaker().state(), BreakerState::Closed);
        assert!(rt.breaker().opens() >= 1 && rt.breaker().closes() >= 1);
    }
    restarted.shutdown();
}
