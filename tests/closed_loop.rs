//! Closed-loop fleet: edge reports feed the streaming cloud learner, which
//! refreshes the served DP prior between rounds — accuracy climbs as the
//! prior learns.
//!
//! The scenario deliberately starts from an **uninformative** prior (one
//! broad zero-centered component): round 1 is as good as regularized local
//! fitting. A reporter cohort with enough local data fits well anyway and
//! reports its models; the [`CloudLearner`] clusters those reports and
//! publishes a refreshed prior, so the few-shot **eval cohort**'s later
//! rounds approach the accuracy it would get from the full batch-fitted
//! cloud prior. The assertions pin:
//!
//! 1. **Learning** — eval accuracy improves round-over-round (within a
//!    small documented noise band) and ends clearly above both its own
//!    first round and the frozen-prior baseline, whose rounds are
//!    bit-identical to each other.
//! 2. **Zero-reconnect refresh** — keep-alive eval clients observe every
//!    refreshed generation over one TCP connection: `connections == 1`,
//!    reuse grows with the rounds, and the server generation climbs once
//!    per refresh.
//! 3. **Determinism** — the whole closed loop is bit-identical across
//!    reruns at two fixed seeds (round accuracies, final models, and the
//!    final refreshed prior payload).
//! 4. **Sharded fan-out** — driving the same loop through a
//!    `ShardedPriorPlane` leaves every owner replica with byte-identical
//!    refreshed payloads, and the fleet keeps improving.

use std::sync::Arc;
use std::time::Duration;

use dre_data::{Dataset, TaskFamily, TaskFamilyConfig};
use dre_edgesim::{poisoned_report, AdversaryKind};
use dre_learner::{admission_from_env, AdmissionConfig, CloudLearner, LearnerConfig, SirConfig};
use dre_linalg::Matrix;
use dre_models::metrics;
use dre_prob::seeded_rng;
use dre_serve::{
    BreakerConfig, EdgeRuntime, EdgeRuntimeConfig, PriorClient, PriorServer, RetryPolicy,
    ServeConfig, ServerState, TcpConnector,
};
use dre_bayes::MixturePrior;
use dro_edge::{CloudKnowledge, EdgeLearnerConfig, FitMode};

const TASK_ID: u64 = 9;
/// Reporters joining the fleet per round; each device reports its fitted
/// model exactly once, so the learner sees a growing pool of distinct
/// source models rather than re-counting the same cohort every round.
const REPORTERS_PER_ROUND: usize = 5;
const EVALS: usize = 3;
const ROUNDS: usize = 5;

fn family_config() -> TaskFamilyConfig {
    TaskFamilyConfig {
        dim: 4,
        num_clusters: 2,
        cluster_separation: 4.0,
        within_cluster_std: 0.2,
        label_noise: 0.02,
        steepness: 3.0,
    }
}

fn learner_config() -> EdgeLearnerConfig {
    EdgeLearnerConfig {
        em_rounds: 3,
        solver_iters: 40,
        multi_start: false,
        ..EdgeLearnerConfig::default()
    }
}

fn runtime_config(report_models: bool, device_id: u64) -> EdgeRuntimeConfig {
    EdgeRuntimeConfig {
        task_id: TASK_ID,
        device_id,
        learner: learner_config(),
        erm_lambda: 1e-3,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_steps: 1,
            cooldown_jitter: 0,
            seed: 0,
        },
        stale_ttl: 2,
        report_models,
        keep_alive: true,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    }
}

/// One broad zero-centered component over packed `[w…, b]` parameters —
/// the uninformative prior the loop starts from.
fn broad_prior(p: usize) -> MixturePrior {
    MixturePrior::single(vec![0.0; p], Matrix::identity(p).scaled(25.0)).unwrap()
}

struct DeviceData {
    train: Dataset,
    test: Dataset,
}

/// The fixed scenario: a task family, a data-rich reporter cohort, and a
/// few-shot eval cohort drawn (like the chaos harness) from tasks where a
/// *learned* cluster prior genuinely helps the few-shot fit — the property
/// the closed loop is supposed to restore online.
struct Scenario {
    reporters: Vec<DeviceData>,
    evals: Vec<DeviceData>,
    param_dim: usize,
}

fn scenario(seed: u64) -> Scenario {
    let mut rng = seeded_rng(seed);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    // Reference batch prior, used only to select prior-covered eval tasks.
    let cloud = CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng).unwrap();

    let mut reporters = Vec::with_capacity(REPORTERS_PER_ROUND * ROUNDS);
    for _ in 0..REPORTERS_PER_ROUND * ROUNDS {
        let task = family.sample_task(&mut rng);
        reporters.push(DeviceData {
            train: task.generate(30, &mut rng),
            test: task.generate(100, &mut rng),
        });
    }

    let mut evals = Vec::with_capacity(EVALS);
    for _ in 0..60 {
        if evals.len() == EVALS {
            break;
        }
        let task = family.sample_task(&mut rng);
        let train = task.generate(12, &mut rng);
        let test = task.generate(300, &mut rng);
        let erm = dro_edge::baselines::fit_local_erm(&train, 1e-3).unwrap();
        let erm_acc = metrics::accuracy(&erm, test.features(), test.labels()).unwrap();
        let fit = dro_edge::EdgeLearner::new(learner_config(), cloud.prior().clone())
            .unwrap()
            .fit(&train)
            .unwrap();
        let dro_acc = metrics::accuracy(&fit.model, test.features(), test.labels()).unwrap();
        if dro_acc > erm_acc + 0.01 {
            evals.push(DeviceData { train, test });
        }
    }
    assert_eq!(evals.len(), EVALS, "could not draw a prior-covered eval cohort");
    let param_dim = family_config().dim + 1;
    Scenario {
        reporters,
        evals,
        param_dim,
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 13,
    }
}

fn sir_learner(seed: u64) -> CloudLearner {
    CloudLearner::new(LearnerConfig {
        sir: SirConfig {
            seed,
            ..SirConfig::default()
        },
        // The per-round flush below publishes explicitly; the interval only
        // has to not fire mid-drain.
        refresh_interval: usize::MAX,
        min_reports_for_base: 4,
        admission: None,
    })
}

/// Everything one closed-loop run produces that must be seed-deterministic.
#[derive(Debug, PartialEq)]
struct LoopOutcome {
    /// Mean eval accuracy per round.
    round_accuracy: Vec<f64>,
    /// Eval-device final fitted parameters (bit-exact).
    final_models: Vec<Vec<f64>>,
    /// Final refreshed prior payload (empty when frozen).
    final_payload: Vec<u8>,
    /// Server cache generation after each round.
    generations: Vec<u64>,
    /// Per-eval-client `(connections, reused_connections)`.
    eval_connections: Vec<(u64, u64)>,
    /// Reports the learner absorbed in total.
    absorbed: usize,
}

/// Runs the closed loop over real TCP. Each round: the eval cohort fits
/// and is measured against the **current** prior, this round\'s newly joined
/// reporters fit + report, and the learner drains and (when `refresh`)
/// publishes — so `round_accuracy[0]` is the uninformative-prior baseline
/// and every later round reflects all reports seen so far.
fn run_loop(sc: &Scenario, learner_seed: u64, refresh: bool) -> LoopOutcome {
    let mut server = PriorServer::bind("127.0.0.1:0", serve_config()).unwrap();
    let addr = server.addr();
    let state: Arc<ServerState> = Arc::clone(server.state());
    state.register_prior(TASK_ID, &broad_prior(sc.param_dim));

    let mut eval_rts: Vec<_> = (0..EVALS)
        .map(|dev| {
            EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(false, 10_000 + dev as u64),
            )
        })
        .collect();

    let mut learner = sir_learner(learner_seed);
    let mut sink = Arc::clone(&state);
    let mut round_accuracy = Vec::with_capacity(ROUNDS);
    let mut generations = Vec::with_capacity(ROUNDS);
    let mut final_models = vec![Vec::new(); EVALS];
    let mut absorbed = 0;

    for round in 0..ROUNDS {
        let mut acc = 0.0;
        for (dev, rt) in eval_rts.iter_mut().enumerate() {
            let data = &sc.evals[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "eval {dev} degraded");
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
            final_models[dev] = fit.model.to_packed();
        }
        round_accuracy.push(acc / EVALS as f64);

        for dev in round * REPORTERS_PER_ROUND..(round + 1) * REPORTERS_PER_ROUND {
            let mut rt = EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(true, dev as u64),
            );
            let fit = rt.fit_step(&sc.reporters[dev].train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "reporter {dev} degraded");
            assert!(fit.reported, "reporter {dev} did not report");
        }
        if refresh {
            let tick = learner.absorb(state.take_reports(), &mut sink).unwrap();
            absorbed += tick.absorbed;
            learner.force_refresh(&mut sink).unwrap();
        }
        generations.push(state.cache_generation());
    }

    let final_payload = if refresh {
        state.prior_entry(TASK_ID).unwrap().payload.as_ref().clone()
    } else {
        Vec::new()
    };
    let eval_connections = eval_rts
        .iter()
        .map(|rt| {
            let m = rt.client().metrics();
            (m.connections, m.reused_connections)
        })
        .collect();
    server.shutdown();
    LoopOutcome {
        round_accuracy,
        final_models,
        final_payload,
        generations,
        eval_connections,
        absorbed,
    }
}

/// Colluding Byzantine reporters joining the poisoned loop each round:
/// 3 adversaries alongside the 5 honest reporters is a 37.5% adversarial
/// fraction, above the 30% bar the robustness claim is made at.
const ADVERSARIES_PER_ROUND: usize = 3;
/// Worst-case transport budget each adversary applies to its own data.
const ADVERSARY_BUDGET: f64 = 2.0;
/// Collusion boost: the cohort reports one identical scaled model, forming
/// a single tight cluster for the unguarded filter to absorb. The negative
/// sign makes the colluding cluster *anti-correlated* with the honest
/// decision functions: while the colluders outnumber the largest honest
/// cluster (they do early on, before the honest pool accumulates), every
/// eval device starts its EM chain at the poison mean (the
/// heaviest-component start under `multi_start: false`) and is actively
/// misled rather than just unlucky.
const ADVERSARY_SCALE: f64 = -2.0;
/// Documented round-accuracy noise band (same one the clean loop pins).
const NOISE_BAND: f64 = 0.02;

/// The admission settings the poisoned loop runs when `DRE_ADMISSION` is
/// on: default gate, with warmup matched to `min_reports_for_base` so the
/// baseline is armed from the moment the filter is born, and a margin
/// placed between the honest score spread (observed worst honest report ≈
/// 6.5 nats below the rolling 10th percentile at both seeds) and the
/// colluders' first-contact marginals (≈ 13 nats below it).
fn poisoned_admission(base: AdmissionConfig) -> AdmissionConfig {
    AdmissionConfig {
        warmup: 4,
        margin: 8.0,
        ..base
    }
}

/// Everything one poisoned run produces that must be seed-deterministic.
#[derive(Debug, PartialEq)]
struct PoisonedOutcome {
    round_accuracy: Vec<f64>,
    absorbed: usize,
    gated: usize,
    quarantined: usize,
    final_payload: Vec<u8>,
    counters: Vec<u64>,
}

/// The closed loop with a colluding feature-shift cohort riding along:
/// every round the honest reporters fit + report as usual, then the
/// adversary devices (persistent identities, monotone sequence numbers)
/// report boosted worst-case models derived from the round's honest data.
fn run_poisoned_loop(
    sc: &Scenario,
    learner_seed: u64,
    admission: Option<AdmissionConfig>,
) -> PoisonedOutcome {
    let mut server = PriorServer::bind("127.0.0.1:0", serve_config()).unwrap();
    let addr = server.addr();
    let state: Arc<ServerState> = Arc::clone(server.state());
    state.register_prior(TASK_ID, &broad_prior(sc.param_dim));

    let mut eval_rts: Vec<_> = (0..EVALS)
        .map(|dev| {
            EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(false, 10_000 + dev as u64),
            )
        })
        .collect();
    let mut adversaries: Vec<_> = (0..ADVERSARIES_PER_ROUND)
        .map(|_| PriorClient::new(TcpConnector::new(addr), fast_policy()))
        .collect();

    let mut learner = CloudLearner::try_new(LearnerConfig {
        sir: SirConfig {
            seed: learner_seed,
            ..SirConfig::default()
        },
        refresh_interval: usize::MAX,
        min_reports_for_base: 4,
        admission,
    })
    .unwrap();
    let mut sink = Arc::clone(&state);
    let mut round_accuracy = Vec::with_capacity(ROUNDS);
    let (mut absorbed, mut gated, mut quarantined) = (0, 0, 0);

    for round in 0..ROUNDS {
        let mut acc = 0.0;
        for (dev, rt) in eval_rts.iter_mut().enumerate() {
            let data = &sc.evals[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "eval {dev} degraded");
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
        }
        round_accuracy.push(acc / EVALS as f64);

        for dev in round * REPORTERS_PER_ROUND..(round + 1) * REPORTERS_PER_ROUND {
            let mut rt = EdgeRuntime::new(
                TcpConnector::new(addr),
                fast_policy(),
                runtime_config(true, dev as u64),
            );
            let fit = rt.fit_step(&sc.reporters[dev].train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "reporter {dev} degraded");
            assert!(fit.reported, "reporter {dev} did not report");
        }
        for (k, client) in adversaries.iter_mut().enumerate() {
            // True collusion: every adversary derives its poison from the
            // same fixed (honest-looking) dataset, so the cohort reports
            // one identical model every round. Fifteen identical reports
            // form the single heaviest DP cluster — honest reports split
            // across the family's task clusters — which is exactly the
            // shape that captures an unguarded heaviest-component start.
            let train = &sc.reporters[0].train;
            let params = poisoned_report(
                AdversaryKind::ColludingBoost {
                    budget: ADVERSARY_BUDGET,
                    scale: ADVERSARY_SCALE,
                },
                train,
                1e-3,
            )
            .unwrap();
            let accepted = client
                .report_model(TASK_ID, 50_000 + k as u64, round as u64 + 1, params)
                .unwrap();
            assert!(accepted, "the wire admits well-formed frames; gating is semantic");
        }

        let tick = learner.absorb(state.take_reports(), &mut sink).unwrap();
        state.note_admission_outcomes(tick.gated as u64, tick.quarantined as u64);
        absorbed += tick.absorbed;
        gated += tick.gated;
        quarantined += tick.quarantined;
        learner.force_refresh(&mut sink).unwrap();
    }

    let final_payload = state.prior_entry(TASK_ID).unwrap().payload.as_ref().clone();
    let counters = state.metrics().deterministic_counters().to_vec();
    server.shutdown();
    PoisonedOutcome {
        round_accuracy,
        absorbed,
        gated,
        quarantined,
        final_payload,
        counters,
    }
}

/// The headline robustness claim, swept by CI under `DRE_ADMISSION ∈
/// {on, off}`: with admission ON a 37.5% colluding feature-shift cohort is
/// gated and eval accuracy stays within the documented noise band of the
/// clean run; with admission OFF the same cohort measurably degrades the
/// fleet. Both arms are bit-identical across reruns at two seeds.
#[test]
fn poisoned_fleet_is_gated_with_admission_on_and_degrades_with_it_off() {
    let admission = admission_from_env().map(poisoned_admission);
    for scenario_seed in [7_500, 9_100] {
        let sc = scenario(scenario_seed);
        let clean = run_loop(&sc, 42, true);

        match &admission {
            Some(cfg) => {
                let on = run_poisoned_loop(&sc, 42, Some(cfg.clone()));
                assert_eq!(
                    on,
                    run_poisoned_loop(&sc, 42, Some(cfg.clone())),
                    "seed {scenario_seed}: admission-on loop is not deterministic"
                );
                // Every adversarial report is refused; every honest report
                // is absorbed — so the served priors, and hence the eval
                // accuracies, match the clean loop round for round.
                assert_eq!(
                    on.absorbed,
                    REPORTERS_PER_ROUND * ROUNDS,
                    "honest reports must all be absorbed"
                );
                assert_eq!(
                    on.gated,
                    ADVERSARIES_PER_ROUND * ROUNDS,
                    "every adversarial report must be refused"
                );
                assert_eq!(
                    on.quarantined, ADVERSARIES_PER_ROUND,
                    "each colluding device ends up quarantined"
                );
                for (r, (p, c)) in on
                    .round_accuracy
                    .iter()
                    .zip(&clean.round_accuracy)
                    .enumerate()
                {
                    assert!(
                        (p - c).abs() <= NOISE_BAND,
                        "round {r}: admission-on accuracy {p:.4} left the \
                         clean noise band around {c:.4}"
                    );
                }
            }
            None => {
                let off = run_poisoned_loop(&sc, 42, None);
                assert_eq!(
                    off,
                    run_poisoned_loop(&sc, 42, None),
                    "seed {scenario_seed}: admission-off loop is not deterministic"
                );
                assert_eq!(off.gated, 0);
                assert_eq!(
                    off.absorbed,
                    (REPORTERS_PER_ROUND + ADVERSARIES_PER_ROUND) * ROUNDS,
                    "without admission the poison reaches the filter"
                );
                // While the colluding cluster outnumbers the young honest
                // pool it owns the heaviest-component start: some early
                // round collapses far below anything the clean loop ever
                // shows. The honest pool eventually outgrows the fixed-rate
                // cohort, so the damage is front-loaded — which is exactly
                // what the mean-accuracy gap measures.
                let clean_mean = clean.round_accuracy.iter().sum::<f64>()
                    / clean.round_accuracy.len() as f64;
                let off_mean = off.round_accuracy.iter().sum::<f64>()
                    / off.round_accuracy.len() as f64;
                assert!(
                    off_mean < clean_mean - NOISE_BAND,
                    "seed {scenario_seed}: the unguarded poisoned fleet \
                     (mean {off_mean:.4}) should measurably trail the clean \
                     fleet (mean {clean_mean:.4})"
                );
                let clean_worst = clean
                    .round_accuracy
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                let off_worst = off
                    .round_accuracy
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    off_worst < clean_worst - 0.1,
                    "seed {scenario_seed}: the capture round ({off_worst:.4}) \
                     should collapse well below the clean loop's worst round \
                     ({clean_worst:.4})"
                );
            }
        }
    }
}

#[test]
fn refreshed_prior_fleet_learns_while_the_frozen_fleet_stays_flat() {
    let sc = scenario(7_500);
    let refreshed = run_loop(&sc, 42, true);
    let frozen = run_loop(&sc, 42, false);

    // The learner really consumed the fleet's reports (each reporter
    // device reports exactly once, in its joining round).
    assert_eq!(refreshed.absorbed, REPORTERS_PER_ROUND * ROUNDS);
    assert_eq!(frozen.absorbed, 0);

    // Frozen baseline: the prior never changes, so every round's eval fits
    // are bit-identical and so is the accuracy.
    for (r, acc) in frozen.round_accuracy.iter().enumerate() {
        assert_eq!(
            *acc, frozen.round_accuracy[0],
            "frozen round {r} drifted without a prior change"
        );
    }
    assert_eq!(
        frozen.generations[ROUNDS - 1],
        frozen.generations[0],
        "frozen server must not bump generations"
    );

    // Refresh: one generation bump per round (one publish per round).
    for (r, w) in refreshed.generations.windows(2).enumerate() {
        assert_eq!(w[1], w[0] + 1, "round {} did not publish a refresh", r + 1);
    }

    // Learning: round 0 measures before any refresh, so it matches the
    // frozen fleet bit-for-bit; later rounds climb within a small noise
    // band and end clearly above both the frozen fleet and the refreshed
    // fleet's own start.
    assert_eq!(refreshed.round_accuracy[0], frozen.round_accuracy[0]);
    let accs = &refreshed.round_accuracy;
    // The climb is steep round 0 → 1 and flattens after; late rounds
    // wobble as additional reports re-shape already-good components (the
    // observed trajectory is ~0.76, 0.89, 0.90, 0.91, 0.89), so the
    // monotonicity check allows a two-percentage-point noise band.
    let noise_band = 0.02;
    for (r, w) in accs.windows(2).enumerate() {
        assert!(
            w[1] >= w[0] - noise_band,
            "round {} accuracy regressed beyond the noise band: {:?}",
            r + 1,
            accs
        );
    }
    let first = accs[0];
    let last = *accs.last().unwrap();
    assert!(
        last > first + 0.01,
        "closed loop never learned: first {first:.4}, last {last:.4} ({accs:?})"
    );
    assert!(
        last > *frozen.round_accuracy.last().unwrap() + 0.01,
        "refreshed fleet ({last:.4}) must clearly beat the frozen fleet \
         ({:.4})",
        frozen.round_accuracy.last().unwrap()
    );

    // Zero-reconnect refresh: every eval client observed all the refreshed
    // generations over a single keep-alive connection.
    for (dev, (connections, reused)) in refreshed.eval_connections.iter().enumerate() {
        assert_eq!(*connections, 1, "eval {dev} reconnected to see a refresh");
        assert_eq!(
            *reused,
            ROUNDS as u64 - 1,
            "eval {dev} did not stream all rounds over one connection"
        );
    }
}

#[test]
fn closed_loop_is_bit_identical_across_reruns_at_fixed_seeds() {
    for scenario_seed in [7_500, 9_100] {
        let sc = scenario(scenario_seed);
        let a = run_loop(&sc, 42, true);
        let b = run_loop(&sc, 42, true);
        assert_eq!(a, b, "seed {scenario_seed}: closed loop is not deterministic");
        assert!(!a.final_payload.is_empty());
        // A different learner seed explores different particle streams but
        // the published prior still reflects the same reports — only the
        // bytes may differ, not the absorb accounting.
        let c = run_loop(&sc, 43, true);
        assert_eq!(c.absorbed, a.absorbed);
    }
}

#[test]
fn sharded_plane_refresh_fans_out_byte_identically() {
    use dre_serve::{ShardConnector, ShardPlaneConfig, ShardedPriorPlane};

    let sc = scenario(7_500);
    // CI sweeps DRE_SERVE_SHARDS ∈ {1, 4} × DRE_SERVE_WORKERS ∈ {1, 4};
    // the replication-2 fan-out needs at least two shards to mean
    // anything, so the plane honours the environment's size with a floor.
    let shards = dre_serve::default_shards().max(2);
    let mut plane = ShardedPriorPlane::bind(ShardPlaneConfig {
        shards,
        replication: 2,
        serve: serve_config(),
        ..ShardPlaneConfig::default()
    })
    .unwrap();
    plane.register_prior(TASK_ID, &broad_prior(sc.param_dim));
    let owners = plane.shard_map().owners(TASK_ID);
    assert_eq!(owners.len(), 2, "replication 2 should give two owners");
    let directory = plane.directory();

    let mut eval_rts: Vec<_> = (0..EVALS)
        .map(|dev| {
            EdgeRuntime::new(
                ShardConnector::new(Arc::clone(&directory), TASK_ID),
                fast_policy(),
                runtime_config(false, 10_000 + dev as u64),
            )
        })
        .collect();

    let mut learner = sir_learner(42);
    let mut accs = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let mut acc = 0.0;
        for (dev, rt) in eval_rts.iter_mut().enumerate() {
            let data = &sc.evals[dev];
            let fit = rt.fit_step(&data.train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "eval {dev} degraded");
            acc += metrics::accuracy(&fit.model, data.test.features(), data.test.labels())
                .unwrap();
        }
        accs.push(acc / EVALS as f64);

        for dev in round * REPORTERS_PER_ROUND..(round + 1) * REPORTERS_PER_ROUND {
            let mut rt = EdgeRuntime::new(
                ShardConnector::new(Arc::clone(&directory), TASK_ID),
                fast_policy(),
                runtime_config(true, dev as u64),
            );
            let fit = rt.fit_step(&sc.reporters[dev].train).unwrap();
            assert_eq!(fit.mode, FitMode::FreshPrior, "reporter {dev} degraded");
        }
        learner.step_plane(&mut plane).unwrap();
        learner.force_refresh(&mut plane).unwrap();

        // Every owner replica serves the refreshed payload byte-identically.
        let payloads: Vec<Vec<u8>> = owners
            .iter()
            .map(|&o| {
                plane
                    .handle(o)
                    .unwrap()
                    .state()
                    .prior_entry(TASK_ID)
                    .unwrap()
                    .payload
                    .as_ref()
                    .clone()
            })
            .collect();
        assert_eq!(
            payloads[0], payloads[1],
            "owner replicas diverged after a refresh"
        );
    }

    // The refreshed replicas actually fanned out (metric, not inference).
    assert!(plane.metrics().replica_fanouts >= ROUNDS as u64);
    // Same learning signal as the single-server loop.
    let first = accs[0];
    let last = *accs.last().unwrap();
    assert!(
        last > first + 0.01,
        "sharded closed loop never learned: {accs:?}"
    );
    plane.shutdown();
}
