//! Property-based invariants of the EM relaxation, across random
//! configurations and datasets.

use dre_bayes::MixturePrior;
use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_linalg::Matrix;
use dre_prob::seeded_rng;
use dro_edge::{EdgeLearner, EdgeLearnerConfig};
use proptest::prelude::*;

fn prior_for(family: &TaskFamily, cov: f64) -> MixturePrior {
    let comps: Vec<(f64, Vec<f64>, Matrix)> = family
        .cluster_centers()
        .iter()
        .map(|c| (1.0, c.clone(), Matrix::from_diag(&vec![cov; c.len()])))
        .collect();
    MixturePrior::new(comps).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn em_objective_never_increases(
        seed in 0u64..1000,
        epsilon in 0.0..0.4f64,
        rho in 0.0..4.0f64,
        n in 8usize..60,
    ) {
        let mut rng = seeded_rng(seed);
        let family = TaskFamily::generate(&TaskFamilyConfig {
            dim: 3,
            num_clusters: 2,
            ..TaskFamilyConfig::default()
        }, &mut rng).unwrap();
        let prior = prior_for(&family, 0.2);
        let task = family.sample_task(&mut rng);
        let data = task.generate(n, &mut rng);
        let learner = EdgeLearner::new(EdgeLearnerConfig {
            epsilon,
            rho,
            em_rounds: 8,
            ..EdgeLearnerConfig::default()
        }, prior).unwrap();
        let fit = learner.fit(&data).unwrap();
        for w in fit.objective_trace.windows(2) {
            prop_assert!(
                w[1] <= w[0] + 1e-3,
                "objective increased: {:?}", fit.objective_trace
            );
        }
    }

    #[test]
    fn responsibilities_are_a_distribution_and_surrogate_is_tight(
        seed in 0u64..1000,
        x0 in -5.0..5.0f64,
        x1 in -5.0..5.0f64,
        x2 in -5.0..5.0f64,
        x3 in -5.0..5.0f64,
    ) {
        let mut rng = seeded_rng(seed);
        let family = TaskFamily::generate(&TaskFamilyConfig {
            dim: 3,
            num_clusters: 3,
            ..TaskFamilyConfig::default()
        }, &mut rng).unwrap();
        let prior = prior_for(&family, 0.5);
        let theta = [x0, x1, x2, x3];
        let r = prior.responsibilities(&theta);
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(r.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let q = prior.em_surrogate(&r).unwrap();
        // Tight at the anchor, majorizing nearby.
        prop_assert!((q.value(&theta) + prior.log_pdf(&theta)).abs() < 1e-7);
        let nearby = [x0 + 0.3, x1 - 0.2, x2, x3 + 0.1];
        prop_assert!(q.value(&nearby) >= -prior.log_pdf(&nearby) - 1e-8);
    }

    #[test]
    fn more_data_shrinks_the_priors_influence(
        seed in 0u64..300,
    ) {
        // With ρ fixed, the prior term is (ρ/n)(−log π): its weight at the
        // fit must fall as n grows. Verify through the learner's exact
        // objective decomposition.
        let mut rng = seeded_rng(seed);
        let family = TaskFamily::generate(&TaskFamilyConfig {
            dim: 3,
            num_clusters: 2,
            ..TaskFamilyConfig::default()
        }, &mut rng).unwrap();
        let prior = prior_for(&family, 0.2);
        let task = family.sample_task(&mut rng);
        let config = EdgeLearnerConfig { em_rounds: 6, ..EdgeLearnerConfig::default() };
        let learner = EdgeLearner::new(config, prior.clone()).unwrap();

        let small = task.generate(10, &mut rng);
        let large = task.generate(200, &mut rng);
        let fit_small = learner.fit(&small).unwrap();
        let fit_large = learner.fit(&large).unwrap();

        let prior_pull = |data: &dre_data::Dataset, packed: &[f64]| {
            -config.rho / data.len() as f64 * prior.log_pdf(packed)
        };
        let pull_small = prior_pull(&small, &fit_small.model.to_packed());
        let pull_large = prior_pull(&large, &fit_large.model.to_packed());
        // The prior term's magnitude decays roughly like 1/n; allow slack
        // because −log π at the fit also moves.
        prop_assert!(
            pull_large.abs() < pull_small.abs() + 1.0,
            "prior influence should fade: n=10 → {pull_small}, n=200 → {pull_large}"
        );
    }
}

#[test]
fn em_trace_length_matches_rounds_plus_one() {
    let mut rng = seeded_rng(4242);
    let family = TaskFamily::generate(
        &TaskFamilyConfig {
            dim: 3,
            num_clusters: 2,
            ..TaskFamilyConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let prior = prior_for(&family, 0.2);
    let task = family.sample_task(&mut rng);
    let data = task.generate(30, &mut rng);
    let learner = EdgeLearner::new(
        EdgeLearnerConfig {
            em_rounds: 7,
            em_tol: 0.0,
            ..EdgeLearnerConfig::default()
        },
        prior,
    )
    .unwrap();
    let fit = learner.fit(&data).unwrap();
    assert_eq!(fit.em_rounds, 7);
    assert_eq!(fit.objective_trace.len(), 8);
}
