//! Cross-crate duality checks: the certified worst-case bound must dominate
//! every feasible adversary the workspace can construct.

use dre_data::{shift, TaskFamily, TaskFamilyConfig};
use dre_models::{ErmObjective, LinearModel, LogisticLoss, MarginLoss};
use dre_prob::seeded_rng;
use dre_robust::worst_case::{adversarial_accuracy, certify, feature_shift_attack};
use dre_robust::{
    chi2_worst_case_risk, kl_worst_case_risk, Chi2Ball, KlBall, WassersteinBall,
    WassersteinDualObjective,
};

fn setup() -> (LinearModel, dre_data::Dataset) {
    let mut rng = seeded_rng(700);
    let family = TaskFamily::generate(
        &TaskFamilyConfig {
            dim: 4,
            ..TaskFamilyConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let task = family.sample_task(&mut rng);
    let data = task.generate(80, &mut rng);
    let model = dro_edge::baselines::fit_local_erm(&data, 1e-2).unwrap();
    (model, data)
}

#[test]
fn certificate_dominates_every_feasible_feature_attack() {
    let (model, data) = setup();
    let eps = 0.4;
    let ball = WassersteinBall::features_only(eps).unwrap();
    let cert = certify(&model, data.features(), data.labels(), LogisticLoss, ball).unwrap();

    // Every uniform shift with budget ≤ ε is W₁-feasible; none may exceed
    // the certified bound.
    for budget in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let attacked =
            feature_shift_attack(&model, data.features(), data.labels(), budget).unwrap();
        let risk: f64 = attacked
            .iter()
            .zip(data.labels())
            .map(|(x, &y)| LogisticLoss.value(model.margin(x, y)))
            .sum::<f64>()
            / data.len() as f64;
        assert!(
            risk <= cert.worst_case_bound + 1e-9,
            "budget {budget}: attack risk {risk} exceeds bound {}",
            cert.worst_case_bound
        );
    }
    assert!(cert.robustness_gap() >= 0.0);
}

#[test]
fn certificate_also_covers_mean_shift_from_the_data_layer() {
    let (model, data) = setup();
    let eps = 0.5;
    let ball = WassersteinBall::features_only(eps).unwrap();
    let cert = certify(&model, data.features(), data.labels(), LogisticLoss, ball).unwrap();

    // A mean shift of norm ε produced by dre-data is also a feasible
    // transport plan.
    let mut delta = vec![0.0; data.dim()];
    delta[0] = eps;
    let shifted = shift::mean_shift(&data, &delta).unwrap();
    let erm = ErmObjective::new(shifted.features(), shifted.labels(), LogisticLoss, 0.0)
        .unwrap();
    let risk = erm.empirical_risk(&model.to_packed());
    assert!(risk <= cert.worst_case_bound + 1e-9);
}

#[test]
fn adversarial_accuracy_is_bounded_by_certified_loss() {
    let (model, data) = setup();
    // 0/1 error ≤ logistic loss / ln 2 (logistic upper-bounds scaled 0-1
    // loss), so certified logistic risk bounds attacked error too.
    let eps = 0.3;
    let ball = WassersteinBall::features_only(eps).unwrap();
    let cert = certify(&model, data.features(), data.labels(), LogisticLoss, ball).unwrap();
    let adv_acc = adversarial_accuracy(&model, data.features(), data.labels(), eps).unwrap();
    let adv_error = 1.0 - adv_acc;
    assert!(
        adv_error <= cert.worst_case_bound / 2.0f64.ln() + 1e-9,
        "adversarial error {adv_error} vs certified bound {}",
        cert.worst_case_bound / 2.0f64.ln()
    );
}

#[test]
fn wasserstein_dual_is_continuous_across_kappa_regimes() {
    let (model, data) = setup();
    let risk = |eps: f64, kappa: f64| {
        let ball = WassersteinBall::new(eps, kappa).unwrap();
        WassersteinDualObjective::new(data.features(), data.labels(), LogisticLoss, ball)
            .unwrap()
            .exact_robust_risk(&model)
    };
    // Monotone in ε for fixed κ; monotone non-increasing in κ for fixed ε.
    assert!(risk(0.2, 1.0) <= risk(0.4, 1.0) + 1e-12);
    assert!(risk(0.2, 0.5) >= risk(0.2, 2.0) - 1e-12);
    assert!((risk(0.2, 1e12) - risk(0.2, f64::INFINITY)).abs() < 1e-9);
}

#[test]
fn dual_matches_brute_force_primal_on_a_small_instance() {
    // Tiny instance where the primal sup can be searched directly: 3 points
    // in 1-D, a grid of feasible transport plans that move each point by
    // δᵢ and/or flip its label at cost κ, subject to the W₁ budget
    // (1/n)·Σᵢ(|δᵢ| + κ·flipᵢ) ≤ ε. The dual must upper-bound every
    // feasible plan and be approached by the best one.
    use dre_models::LinearModel;
    let xs = vec![vec![1.0], vec![-0.5], vec![0.2]];
    let ys = vec![1.0, -1.0, 1.0];
    let model = LinearModel::new(vec![1.5], -0.1);
    let eps = 0.3;
    let kappa = 0.8;
    let ball = WassersteinBall::new(eps, kappa).unwrap();
    let dual = WassersteinDualObjective::new(&xs, &ys, LogisticLoss, ball).unwrap();
    let bound = dual.exact_robust_risk(&model);

    let n = xs.len() as f64;
    let mut best_primal = f64::NEG_INFINITY;
    let deltas: Vec<f64> = (-40..=40).map(|i| i as f64 * 0.025).collect();
    for &d0 in &deltas {
        for &d1 in &deltas {
            for &d2 in &deltas {
                for flips in 0..8u8 {
                    let flip = [flips & 1 != 0, flips & 2 != 0, flips & 4 != 0];
                    let cost = (d0.abs()
                        + d1.abs()
                        + d2.abs()
                        + kappa * flip.iter().filter(|&&f| f).count() as f64)
                        / n;
                    if cost > eps {
                        continue;
                    }
                    let risk = [
                        (xs[0][0] + d0, if flip[0] { -ys[0] } else { ys[0] }),
                        (xs[1][0] + d1, if flip[1] { -ys[1] } else { ys[1] }),
                        (xs[2][0] + d2, if flip[2] { -ys[2] } else { ys[2] }),
                    ]
                    .iter()
                    .map(|&(x, y)| LogisticLoss.value(model.margin(&[x], y)))
                    .sum::<f64>()
                        / n;
                    best_primal = best_primal.max(risk);
                }
            }
        }
    }
    assert!(
        best_primal <= bound + 1e-9,
        "a feasible primal plan ({best_primal}) exceeded the dual bound ({bound})"
    );
    // Strong duality: the grid search should come close to the bound
    // (the grid is finite and moves points by at most 1, so allow slack).
    assert!(
        bound - best_primal < 0.05,
        "dual bound ({bound}) is not tight against the primal ({best_primal})"
    );
}

#[test]
fn f_divergence_risks_sit_between_mean_and_max_on_real_losses() {
    let (model, data) = setup();
    let losses: Vec<f64> = data
        .features()
        .iter()
        .zip(data.labels())
        .map(|(x, &y)| LogisticLoss.value(model.margin(x, y)))
        .collect();
    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
    let max = losses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for rho in [0.05, 0.5, 5.0] {
        let kl = kl_worst_case_risk(&losses, KlBall::new(rho).unwrap()).unwrap();
        let chi = chi2_worst_case_risk(&losses, Chi2Ball::new(rho).unwrap()).unwrap();
        assert!(kl >= mean - 1e-9 && kl <= max + 1e-9);
        assert!(chi >= mean - 1e-9 && chi <= max + 1e-9);
        // χ² is at least as conservative as KL at matched small radii on
        // bounded losses… not a theorem — so only check both grow with ρ.
    }
    let kl_small = kl_worst_case_risk(&losses, KlBall::new(0.01).unwrap()).unwrap();
    let kl_large = kl_worst_case_risk(&losses, KlBall::new(5.0).unwrap()).unwrap();
    assert!(kl_large >= kl_small);
}
