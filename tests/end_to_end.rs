//! End-to-end integration: family → cloud DP fit → edge DRO-EM → metrics,
//! exercising every crate in one pipeline.

use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_models::metrics;
use dre_prob::seeded_rng;
use dro_edge::evaluate::{run_methods, Method};
use dro_edge::{baselines, CloudKnowledge, EdgeLearner, EdgeLearnerConfig, PriorFitMethod};

fn family_config() -> TaskFamilyConfig {
    TaskFamilyConfig {
        dim: 4,
        num_clusters: 2,
        cluster_separation: 4.0,
        within_cluster_std: 0.2,
        label_noise: 0.02,
        steepness: 3.0,
    }
}

#[test]
fn full_pipeline_beats_local_only_learning_at_small_n() {
    let mut rng = seeded_rng(900);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let cloud = CloudKnowledge::from_family(&family, 30, 400, 1.0, &mut rng).unwrap();
    let config = EdgeLearnerConfig {
        em_rounds: 10,
        ..EdgeLearnerConfig::default()
    };

    let trials = 10;
    let mut erm_sum = 0.0;
    let mut drodp_sum = 0.0;
    for _ in 0..trials {
        let task = family.sample_task(&mut rng);
        let train = task.generate(12, &mut rng);
        let test = task.generate(600, &mut rng);

        let erm = baselines::fit_local_erm(&train, 1e-3).unwrap();
        erm_sum += metrics::accuracy(&erm, test.features(), test.labels()).unwrap();

        let learner = EdgeLearner::new(config, cloud.prior().clone()).unwrap();
        let fit = learner.fit(&train).unwrap();
        drodp_sum += metrics::accuracy(&fit.model, test.features(), test.labels()).unwrap();
    }
    let erm = erm_sum / trials as f64;
    let drodp = drodp_sum / trials as f64;
    assert!(
        drodp > erm + 0.02,
        "DRO+DP ({drodp:.3}) should clearly beat local ERM ({erm:.3}) at n = 12"
    );
}

#[test]
fn pipeline_is_deterministic_given_the_seed() {
    let run = || {
        let mut rng = seeded_rng(901);
        let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
        let cloud = CloudKnowledge::from_family(&family, 20, 300, 1.0, &mut rng).unwrap();
        let task = family.sample_task(&mut rng);
        let train = task.generate(15, &mut rng);
        let learner =
            EdgeLearner::new(EdgeLearnerConfig::default(), cloud.prior().clone()).unwrap();
        learner.fit(&train).unwrap().model.to_packed()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give bit-identical models");
}

#[test]
fn gibbs_and_variational_priors_both_transfer() {
    let mut rng = seeded_rng(902);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let gibbs_cloud = CloudKnowledge::from_family(&family, 30, 400, 1.0, &mut rng).unwrap();
    let vb_cloud = CloudKnowledge::from_source_models(
        gibbs_cloud.source_models().to_vec(),
        1.0,
        PriorFitMethod::Variational,
        &mut rng,
    )
    .unwrap();

    // Gibbs (which integrates parameter uncertainty) recovers the true
    // count exactly; VB point-estimates and may over-segment noisy fitted
    // parameters, but must cover at least the true clusters.
    assert_eq!(gibbs_cloud.discovered_clusters(), 2);
    assert!(
        (2..=6).contains(&vb_cloud.discovered_clusters()),
        "vb found {}",
        vb_cloud.discovered_clusters()
    );

    // And both priors should let the learner match its task's cluster.
    for cloud in [&gibbs_cloud, &vb_cloud] {
        let task = family.sample_task(&mut rng);
        let train = task.generate(25, &mut rng);
        let learner =
            EdgeLearner::new(EdgeLearnerConfig::default(), cloud.prior().clone()).unwrap();
        let fit = learner.fit(&train).unwrap();
        let test = task.generate(500, &mut rng);
        let acc = metrics::accuracy(&fit.model, test.features(), test.labels()).unwrap();
        assert!(acc > 0.7, "transfer accuracy {acc} too low");
    }
}

#[test]
fn evaluation_protocol_runs_all_methods_end_to_end() {
    let mut rng = seeded_rng(903);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let cloud = CloudKnowledge::from_family(&family, 20, 300, 1.0, &mut rng).unwrap();
    let task = family.sample_task(&mut rng);
    let train = task.generate(20, &mut rng);
    let test = task.generate(400, &mut rng);
    let results = run_methods(
        &Method::ALL,
        &train,
        &test,
        cloud.prior(),
        &EdgeLearnerConfig {
            em_rounds: 5,
            ..EdgeLearnerConfig::default()
        },
        Some(&task),
    )
    .unwrap();
    assert_eq!(results.len(), Method::ALL.len());
    let oracle = results
        .iter()
        .find(|r| r.method == Method::Oracle)
        .unwrap()
        .accuracy;
    for r in &results {
        assert!(
            r.accuracy <= oracle + 0.05,
            "{} ({}) should not beat the oracle ({oracle}) by more than noise",
            r.method.name(),
            r.accuracy
        );
    }
}

#[test]
fn multiclass_pipeline_transfers_on_digits() {
    use dre_data::digits;
    use dre_models::SoftmaxObjective;
    use dre_optim::{Lbfgs, Objective, StopCriteria};
    use dro_edge::multiclass::{pooled_prior, MulticlassEdgeLearner};

    let mut rng = seeded_rng(905);
    let classes = [0usize, 3, 8];
    // Cloud: 5 source devices on the same 3-class task.
    let mut sources = Vec::new();
    for _ in 0..5 {
        let (xs, ys) = digits::multiclass_task(&classes, 30, 0.5, &mut rng).unwrap();
        let obj = SoftmaxObjective::new(&xs, &ys, 3, 1e-3).unwrap();
        let fit = Lbfgs::new(StopCriteria::with_max_iters(120))
            .minimize(&obj, &vec![0.0; obj.dim()])
            .unwrap();
        sources.push(fit.x);
    }
    let prior = pooled_prior(&sources, 0.01).unwrap();
    let learner = MulticlassEdgeLearner::new(
        EdgeLearnerConfig {
            epsilon: 0.02,
            em_rounds: 3,
            ..EdgeLearnerConfig::default()
        },
        prior,
        3,
    )
    .unwrap();

    // Edge: one sample per class.
    let (xs, ys) = digits::multiclass_task(&classes, 1, 0.5, &mut rng).unwrap();
    let fit = learner.fit(&xs, &ys).unwrap();
    let (txs, tys) = digits::multiclass_task(&classes, 40, 0.7, &mut rng).unwrap();
    let acc = txs
        .iter()
        .zip(&tys)
        .filter(|(x, &y)| fit.model.predict(x) == y)
        .count() as f64
        / tys.len() as f64;
    assert!(acc > 0.85, "multiclass transfer accuracy {acc}");
    // Monotone EM trace carries over to the multiclass learner.
    for w in fit.objective_trace.windows(2) {
        assert!(w[1] <= w[0] + 1e-6);
    }
}

#[test]
fn serialized_prior_roundtrips_through_the_wire_format() {
    use dro_edge::transfer::{deserialize_prior, serialize_prior};

    let mut rng = seeded_rng(906);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let cloud = CloudKnowledge::from_family(&family, 16, 250, 1.0, &mut rng).unwrap();
    let bytes = serialize_prior(cloud.prior());
    let restored = deserialize_prior(&bytes).unwrap();

    // A learner using the restored prior behaves identically.
    let task = family.sample_task(&mut rng);
    let train = task.generate(15, &mut rng);
    let config = EdgeLearnerConfig {
        em_rounds: 4,
        ..EdgeLearnerConfig::default()
    };
    let a = EdgeLearner::new(config, cloud.prior().clone())
        .unwrap()
        .fit(&train)
        .unwrap();
    let b = EdgeLearner::new(config, restored).unwrap().fit(&train).unwrap();
    // The wire format stores the covariance, not its Cholesky factor, so
    // re-factorization perturbs the prior at the 1e-16 level; the fits must
    // agree to optimizer precision, not bit-for-bit.
    assert!(
        dre_linalg::vector::max_abs_diff(&a.model.to_packed(), &b.model.to_packed()) < 1e-5,
        "restored-prior fit diverged: {:?} vs {:?}",
        a.model.to_packed(),
        b.model.to_packed()
    );
}

#[test]
fn prior_transfer_size_is_far_below_raw_data_size() {
    let mut rng = seeded_rng(904);
    let family = TaskFamily::generate(&family_config(), &mut rng).unwrap();
    let cloud = CloudKnowledge::from_family(&family, 30, 400, 1.0, &mut rng).unwrap();
    // Raw upload of even one device's 400 samples dwarfs the prior.
    let raw = 400 * (family.config().dim + 1) * 8;
    assert!(
        cloud.transfer_size_bytes() * 4 < raw,
        "prior {} bytes vs raw {} bytes",
        cloud.transfer_size_bytes(),
        raw
    );
}
