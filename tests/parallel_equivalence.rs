//! Serial/parallel equivalence: every parallelized hot path must produce
//! **bit-identical** results with the parallel feature active and forced
//! off at runtime.
//!
//! `dre_parallel::with_serial` drives the same code down the
//! single-worker path — the exact path taken with `--no-default-features`
//! or `DRE_NUM_THREADS=1`/`RAYON_NUM_THREADS=1` — so these tests cover the
//! thread-count axis too: reduction chunk boundaries are fixed constants
//! (independent of worker count), and maps have one writer per output
//! element, so *any* thread count yields the byte-for-byte same answer.
//! CI additionally runs the whole suite with the feature disabled.

use dre_bayes::{DpNiwGibbs, GibbsConfig, VariationalConfig, VariationalDpGmm};
use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_linalg::Matrix;
use dre_models::{LinearModel, LogisticLoss};
use dre_optim::Objective as _;
use dre_prob::{seeded_rng, MvNormal, NormalInverseWishart};
use dre_robust::worst_case::adversarial_accuracy;
use dre_robust::{WassersteinBall, WassersteinDualObjective};
use dro_edge::{EdgeLearner, EdgeLearnerConfig};
use proptest::prelude::*;
use rand::Rng;

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

fn random_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Shapes straddle the blocked-kernel threshold (8192 multiply-adds),
    // so both the legacy and the chunked row-blocked path are exercised.
    #[test]
    fn matmul_matches_serial_bitwise(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let par = a.matmul(&b).unwrap();
        let ser = dre_parallel::with_serial(|| a.matmul(&b).unwrap());
        for (x, y) in par.as_slice().iter().zip(ser.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matvec_both_ways_match_serial_bitwise(
        m in 1usize..300,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = seeded_rng(seed);
        let a = random_matrix(&mut rng, m, n);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let t: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (pv, pt) = (a.matvec(&x).unwrap(), a.matvec_t(&t).unwrap());
        let (sv, st) =
            dre_parallel::with_serial(|| (a.matvec(&x).unwrap(), a.matvec_t(&t).unwrap()));
        for (p, s) in pv.iter().zip(&sv).chain(pt.iter().zip(&st)) {
            prop_assert_eq!(p.to_bits(), s.to_bits());
        }
    }
}

/// A deterministic 3-cluster parameter cloud for the Bayesian fitters.
fn clustered_params(m: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded_rng(seed);
    let centers = [
        MvNormal::isotropic(vec![3.0; d], 0.05).unwrap(),
        MvNormal::isotropic(vec![-3.0; d], 0.05).unwrap(),
        MvNormal::isotropic(vec![0.0; d], 0.05).unwrap(),
    ];
    (0..m)
        .map(|i| centers[i % centers.len()].sample(&mut rng))
        .collect()
}

#[test]
fn gibbs_fit_matches_serial_exactly() {
    let data = clustered_params(60, 4, 21);
    let gibbs = DpNiwGibbs::new(
        NormalInverseWishart::vague(4).unwrap(),
        GibbsConfig {
            alpha: 1.0,
            burn_in: 1,
            sweeps: 4,
            alpha_prior: None,
            exact_recompute: false,
        },
    )
    .unwrap();
    let par = gibbs.fit(&data, &mut seeded_rng(3)).unwrap();
    let ser = dre_parallel::with_serial(|| gibbs.fit(&data, &mut seeded_rng(3)).unwrap());
    // Scoring is parallel but the sampler consumes the same RNG stream, so
    // the trajectories — not just the summaries — must agree exactly.
    assert_eq!(par.assignments, ser.assignments);
    assert_eq!(par.cluster_trace, ser.cluster_trace);
    assert_bits_eq(&par.log_joint_trace, &ser.log_joint_trace, "gibbs log joint");
    assert_bits_eq(&par.alpha_trace, &ser.alpha_trace, "gibbs alpha trace");
}

/// The predictive-cached scoring path must reproduce the exact-recompute
/// escape hatch: both consume the identical RNG stream and their scores
/// agree far below the categorical decision resolution, so the sampled
/// trajectory — assignments, cluster trace, alpha trace — is identical,
/// and the log-joint trace agrees to the cache's documented tolerance.
/// Runs under both the `parallel` and `--no-default-features` builds, and
/// additionally under `with_serial`, covering the thread-count axis.
#[test]
fn gibbs_cached_matches_exact_recompute_trace() {
    let data = clustered_params(60, 4, 21);
    let cfg = GibbsConfig {
        alpha: 1.2,
        burn_in: 2,
        sweeps: 4,
        alpha_prior: Some(dre_bayes::ConcentrationPrior::vague()),
        exact_recompute: false,
    };
    let base = NormalInverseWishart::vague(4).unwrap();
    let cached = DpNiwGibbs::new(base.clone(), cfg).unwrap();
    let exact = DpNiwGibbs::new(
        base,
        GibbsConfig {
            exact_recompute: true,
            ..cfg
        },
    )
    .unwrap();

    let rc = cached.fit(&data, &mut seeded_rng(8)).unwrap();
    let re = exact.fit(&data, &mut seeded_rng(8)).unwrap();
    let rc_serial =
        dre_parallel::with_serial(|| cached.fit(&data, &mut seeded_rng(8)).unwrap());

    assert_eq!(rc.assignments, re.assignments, "cached vs exact assignments");
    assert_eq!(rc.cluster_trace, re.cluster_trace, "cached vs exact clusters");
    assert_bits_eq(&rc.alpha_trace, &re.alpha_trace, "cached vs exact alpha");
    assert_eq!(rc.log_joint_trace.len(), re.log_joint_trace.len());
    for (i, (a, b)) in rc.log_joint_trace.iter().zip(&re.log_joint_trace).enumerate() {
        assert!(
            (a - b).abs() < 1e-6,
            "log joint entry {i} diverged: cached {a} vs exact {b}"
        );
    }

    // The cached path itself is serial/parallel bit-identical.
    assert_eq!(rc.assignments, rc_serial.assignments);
    assert_bits_eq(&rc.log_joint_trace, &rc_serial.log_joint_trace, "cached serial");

    // And the cache actually did its job.
    assert!(
        rc.cache_stats.hit_rate() > 0.99,
        "cache hit rate too low: {:?}",
        rc.cache_stats
    );
    assert_eq!(re.cache_stats.hit_rate(), 0.0);
}

#[test]
fn variational_fit_matches_serial_exactly() {
    let data = clustered_params(90, 4, 22);
    let vb = VariationalDpGmm::new(VariationalConfig {
        alpha: 1.0,
        truncation: 10,
        max_iters: 25,
        ..VariationalConfig::default()
    })
    .unwrap();
    let par = vb.fit(&data, &mut seeded_rng(4)).unwrap();
    let ser = dre_parallel::with_serial(|| vb.fit(&data, &mut seeded_rng(4)).unwrap());
    assert_bits_eq(&par.objective_trace, &ser.objective_trace, "vb objective");
    assert_bits_eq(&par.weights, &ser.weights, "vb weights");
    for (p, s) in par.means.iter().zip(&ser.means) {
        assert_bits_eq(p, s, "vb means");
    }
}

fn labeled_dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(seed);
    let gen = MvNormal::isotropic(vec![0.0; d], 1.0).unwrap();
    let xs = gen.sample_n(&mut rng, n);
    let ys = xs
        .iter()
        .map(|x| if x[0] + 0.3 * x[1] >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    (xs, ys)
}

#[test]
fn dual_objective_matches_serial_bitwise() {
    let (xs, ys) = labeled_dataset(700, 6, 31);
    let ball = WassersteinBall::new(0.15, 0.8).unwrap();
    let obj = WassersteinDualObjective::new(&xs, &ys, LogisticLoss, ball).unwrap();
    let packed: Vec<f64> = (0..8).map(|i| 0.2 * i as f64 - 0.5).collect();
    let model = LinearModel::from_packed(&packed[..7]);

    let (pv, pg) = obj.value_and_gradient(&packed);
    let pr = obj.exact_robust_risk(&model);
    let ((sv, sg), sr) = dre_parallel::with_serial(|| {
        (obj.value_and_gradient(&packed), obj.exact_robust_risk(&model))
    });
    assert_eq!(pv.to_bits(), sv.to_bits(), "dual value");
    assert_eq!(pr.to_bits(), sr.to_bits(), "exact robust risk");
    assert_bits_eq(&pg, &sg, "dual gradient");
}

#[test]
fn adversarial_accuracy_matches_serial_exactly() {
    let (xs, ys) = labeled_dataset(500, 5, 32);
    let model = LinearModel::new(vec![1.0, 0.4, -0.2, 0.0, 0.7], 0.1);
    for budget in [0.0, 0.1, 0.5, 2.0] {
        let par = adversarial_accuracy(&model, &xs, &ys, budget).unwrap();
        let ser =
            dre_parallel::with_serial(|| adversarial_accuracy(&model, &xs, &ys, budget).unwrap());
        assert_eq!(par.to_bits(), ser.to_bits(), "budget {budget}");
    }
}

#[test]
fn em_objective_trace_matches_serial_bitwise() {
    let mut rng = seeded_rng(6);
    let cfg = TaskFamilyConfig {
        dim: 3,
        num_clusters: 2,
        cluster_separation: 4.0,
        within_cluster_std: 0.2,
        label_noise: 0.02,
        steepness: 3.0,
    };
    let family = TaskFamily::generate(&cfg, &mut rng).unwrap();
    let comps: Vec<(f64, Vec<f64>, Matrix)> = family
        .cluster_centers()
        .iter()
        .map(|c| (1.0, c.clone(), Matrix::from_diag(&[0.1; 4])))
        .collect();
    let prior = dre_bayes::MixturePrior::new(comps).unwrap();
    let task = family.sample_task(&mut rng);
    let data = task.generate(25, &mut rng);
    let learner = EdgeLearner::new(
        EdgeLearnerConfig {
            em_rounds: 5,
            ..EdgeLearnerConfig::default()
        },
        prior,
    )
    .unwrap();

    let par = learner.fit(&data).unwrap();
    let ser = dre_parallel::with_serial(|| learner.fit(&data).unwrap());
    assert_bits_eq(&par.objective_trace, &ser.objective_trace, "EM trace");
    assert_bits_eq(par.model.weights(), ser.model.weights(), "EM final weights");
    assert_eq!(par.em_rounds, ser.em_rounds);
    assert_eq!(
        par.robust_risk.to_bits(),
        ser.robust_risk.to_bits(),
        "certified risk"
    );
}
