//! Scale gates for the flat-state event executor: a million-device
//! scenario must finish in seconds, and its steady-state hot loop must not
//! touch the allocator.
//!
//! The 100k/1M tests are ignored under debug builds (an unoptimized
//! BinaryHeap is an order of magnitude slower); CI runs them in release
//! via `cargo test --release -p dre-integration --test scale -- --ignored`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dre_edgesim::{
    ComputeModel, DeviceSpec, Link, Scenario, SimDuration, Strategy, SwitchConfig, Topology,
};

/// System allocator wrapper that counts allocation calls, so the tests can
/// assert the executor's steady state is allocation-free.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A prior-transfer fleet over the one-big-switch fabric, sized so every
/// message is a single segment and nothing is dropped: the pure
/// executor-throughput shape the events/sec benchmark also uses.
fn fleet(n: usize) -> Scenario {
    let topo = Topology::one_big_switch(Link::new_ms(1.0, 1e12)).with_switch(SwitchConfig {
        // Roomy enough that a full-fleet incast queues instead of dropping.
        queue_capacity: 2 * n as u32 + 16,
        // The cloud drains one frame per microsecond; a fleet-sized queue
        // takes ~n µs, so the RTO must sit far above that to stay quiet.
        rto: SimDuration::from_secs_f64(3600.0),
        ..SwitchConfig::default()
    });
    let mut sc = Scenario::new(ComputeModel::default()).with_topology(topo);
    for _ in 0..n {
        sc.add_device(DeviceSpec {
            link: Link::new_ms(5.0, 1e6),
            strategy: Strategy::PriorTransfer {
                samples: 100,
                dim: 8,
                iterations: 50,
                em_rounds: 4,
                prior_components: 2,
            },
        });
    }
    sc
}

fn assert_clean_completion(n: usize, r: &dre_edgesim::SimReport) {
    assert_eq!(r.devices.len(), n);
    assert_eq!(r.messages_dropped, 0, "the queue is sized to absorb the incast");
    assert_eq!(r.bytes_retransmitted, 0, "nothing may time out");
    assert!(r.devices.iter().all(|d| d.completion.as_micros() > 0));
    // Every device runs the full request → ack → payload → ack → EM
    // pipeline; the pinned single-device trace executes 21 events.
    assert!(r.events_executed >= 20 * n as u64);
}

/// Always-on sanity tier: ten thousand devices through the full fabric,
/// fast enough for debug test runs.
#[test]
fn ten_thousand_devices_complete_cleanly() {
    let n = 10_000;
    let r = fleet(n).run();
    assert_clean_completion(n, &r);
}

/// CI smoke tier (release): a hundred thousand devices.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only scale gate")]
fn hundred_thousand_devices_complete_cleanly() {
    let n = 100_000;
    let start = Instant::now();
    let r = fleet(n).run();
    assert_clean_completion(n, &r);
    assert!(
        start.elapsed().as_secs() < 30,
        "100k devices took {:?}",
        start.elapsed()
    );
}

/// The headline gate: a million devices in under a minute, with an
/// allocation-free steady state — the run may allocate only its pre-sized
/// setup structures (event heap, device table, port array, slabs), on the
/// order of dozens of calls, not one of its ~21 million events.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only scale gate")]
fn million_devices_run_in_seconds_without_steady_state_allocation() {
    let n = 1_000_000;
    let sc = fleet(n);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let r = sc.run();
    let elapsed = start.elapsed();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_clean_completion(n, &r);
    assert!(
        elapsed.as_secs() < 60,
        "a million devices took {elapsed:?}, budget is 60 s"
    );
    // ~21M events executed; allocation must be O(setup), not O(events).
    assert!(
        allocs < 10_000,
        "steady state allocated: {allocs} allocator calls for {} events",
        r.events_executed
    );
    let events_per_sec = r.events_executed as f64 / elapsed.as_secs_f64();
    eprintln!(
        "1M devices: {} events in {elapsed:?} ({events_per_sec:.0} events/sec, {allocs} allocator calls)",
        r.events_executed
    );
}
