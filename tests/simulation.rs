//! Integration of the deployment simulator with the real learning
//! pipeline: prior sizes come from an actually fitted cloud prior.

use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_edgesim::{ComputeModel, DeviceSpec, Link, Scenario, Strategy};
use dre_prob::seeded_rng;
use dro_edge::CloudKnowledge;

fn fitted_prior_bytes() -> (u64, usize) {
    let mut rng = seeded_rng(600);
    let family = TaskFamily::generate(
        &TaskFamilyConfig {
            dim: 6,
            num_clusters: 3,
            ..TaskFamilyConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let cloud = CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng).unwrap();
    (cloud.transfer_size_bytes() as u64, family.config().dim)
}

#[test]
fn prior_transfer_beats_raw_upload_on_bytes_with_a_real_prior() {
    let (prior_bytes, dim) = fitted_prior_bytes();
    let samples = 500;
    let link = Link::new_ms(30.0, 125_000.0);

    let run = |strategy| {
        let mut sc = Scenario::new(ComputeModel::default());
        sc.add_device(DeviceSpec { link, strategy });
        sc.run()
    };
    let cloud = run(Strategy::CloudRoundTrip {
        samples,
        dim,
        iterations: 100,
    });
    let prior = run(Strategy::PriorTransfer {
        samples,
        dim,
        iterations: 100,
        em_rounds: 10,
        prior_bytes,
    });
    assert!(
        prior.total_bytes * 3 < cloud.total_bytes,
        "fitted prior {} bytes should be ≪ raw upload {} bytes",
        prior.total_bytes,
        cloud.total_bytes
    );
}

#[test]
fn fleet_scaling_shapes_match_the_paper_motivation() {
    let (prior_bytes, dim) = fitted_prior_bytes();
    let link = Link::new_ms(30.0, 125_000.0);
    let makespan = |strategy: Strategy, fleet: usize| {
        let mut sc = Scenario::new(ComputeModel {
            cloud_flops: 5e8, // modest cloud to expose contention
            ..ComputeModel::default()
        });
        for _ in 0..fleet {
            sc.add_device(DeviceSpec { link, strategy });
        }
        sc.run().makespan.as_secs_f64()
    };

    let cloud_1 = makespan(
        Strategy::CloudRoundTrip {
            samples: 500,
            dim,
            iterations: 100,
        },
        1,
    );
    let cloud_40 = makespan(
        Strategy::CloudRoundTrip {
            samples: 500,
            dim,
            iterations: 100,
        },
        40,
    );
    let prior_strategy = Strategy::PriorTransfer {
        samples: 500,
        dim,
        iterations: 100,
        em_rounds: 10,
        prior_bytes,
    };
    let prior_1 = makespan(prior_strategy, 1);
    let prior_40 = makespan(prior_strategy, 40);

    // Cloud round trips queue; prior transfers do not.
    assert!(cloud_40 > cloud_1 * 2.0, "cloud should queue: {cloud_1} → {cloud_40}");
    assert!(
        (prior_40 - prior_1).abs() < 1e-9,
        "prior transfer should scale flat: {prior_1} → {prior_40}"
    );
}

#[test]
fn device_reports_are_internally_consistent() {
    let (prior_bytes, dim) = fitted_prior_bytes();
    let mut sc = Scenario::new(ComputeModel::default());
    for i in 0..6 {
        sc.add_device(DeviceSpec {
            link: Link::new_ms(10.0 + i as f64 * 5.0, 1e6),
            strategy: Strategy::PriorTransfer {
                samples: 100 + 10 * i,
                dim,
                iterations: 50,
                em_rounds: 8,
                prior_bytes,
            },
        });
    }
    let report = sc.run();
    assert_eq!(report.devices.len(), 6);
    // Every device sent a request and received the prior.
    for d in &report.devices {
        assert_eq!(d.bytes_sent, 64);
        assert_eq!(d.bytes_received, prior_bytes);
        assert!(d.completion.as_micros() > 0);
    }
    // Longer links and bigger workloads finish strictly later.
    for w in report.devices.windows(2) {
        assert!(w[1].completion > w[0].completion);
    }
    assert_eq!(
        report.total_bytes,
        6 * (64 + prior_bytes),
        "aggregate bytes must equal the per-device sum"
    );
}
