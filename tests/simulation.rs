//! Integration of the deployment simulator with the real learning
//! pipeline: prior sizes come from an actually fitted cloud prior, and the
//! simulator's byte counts are pinned to the real `dre-serve` wire frames.

use dre_data::{TaskFamily, TaskFamilyConfig};
use dre_edgesim::{
    model_report_bytes, prior_transfer_bytes, ClientMode, ComputeModel, DeviceSpec, Link,
    RetryModel, Scenario, SimDuration, Strategy, REQUEST_BYTES,
};
use dre_prob::seeded_rng;
use dro_edge::CloudKnowledge;

fn fitted_cloud() -> (CloudKnowledge, usize) {
    let mut rng = seeded_rng(600);
    let family = TaskFamily::generate(
        &TaskFamilyConfig {
            dim: 6,
            num_clusters: 3,
            ..TaskFamilyConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let cloud = CloudKnowledge::from_family(&family, 24, 300, 1.0, &mut rng).unwrap();
    (cloud, family.config().dim)
}

#[test]
fn prior_transfer_beats_raw_upload_on_bytes_with_a_real_prior() {
    let (cloud_knowledge, dim) = fitted_cloud();
    let prior_components = cloud_knowledge.prior().num_components();
    let samples = 500;
    let link = Link::new_ms(30.0, 125_000.0);

    let run = |strategy| {
        let mut sc = Scenario::new(ComputeModel::default());
        sc.add_device(DeviceSpec { link, strategy });
        sc.run()
    };
    let cloud = run(Strategy::CloudRoundTrip {
        samples,
        dim,
        iterations: 100,
    });
    let prior = run(Strategy::PriorTransfer {
        samples,
        dim,
        iterations: 100,
        em_rounds: 10,
        prior_components,
    });
    assert!(
        prior.total_bytes * 3 < cloud.total_bytes,
        "fitted prior {} bytes should be ≪ raw upload {} bytes",
        prior.total_bytes,
        cloud.total_bytes
    );
}

#[test]
fn fleet_scaling_shapes_match_the_paper_motivation() {
    let (cloud_knowledge, dim) = fitted_cloud();
    let prior_components = cloud_knowledge.prior().num_components();
    let link = Link::new_ms(30.0, 125_000.0);
    let makespan = |strategy: Strategy, fleet: usize| {
        let mut sc = Scenario::new(ComputeModel {
            cloud_flops: 5e8, // modest cloud to expose contention
            ..ComputeModel::default()
        });
        for _ in 0..fleet {
            sc.add_device(DeviceSpec { link, strategy });
        }
        sc.run().makespan.as_secs_f64()
    };

    let cloud_1 = makespan(
        Strategy::CloudRoundTrip {
            samples: 500,
            dim,
            iterations: 100,
        },
        1,
    );
    let cloud_40 = makespan(
        Strategy::CloudRoundTrip {
            samples: 500,
            dim,
            iterations: 100,
        },
        40,
    );
    let prior_strategy = Strategy::PriorTransfer {
        samples: 500,
        dim,
        iterations: 100,
        em_rounds: 10,
        prior_components,
    };
    let prior_1 = makespan(prior_strategy, 1);
    let prior_40 = makespan(prior_strategy, 40);

    // Cloud round trips queue; prior transfers do not.
    assert!(cloud_40 > cloud_1 * 2.0, "cloud should queue: {cloud_1} → {cloud_40}");
    assert!(
        (prior_40 - prior_1).abs() < 1e-9,
        "prior transfer should scale flat: {prior_1} → {prior_40}"
    );
}

#[test]
fn device_reports_are_internally_consistent() {
    let (cloud_knowledge, dim) = fitted_cloud();
    let prior_components = cloud_knowledge.prior().num_components();
    let prior_bytes = prior_transfer_bytes(prior_components, dim);
    let mut sc = Scenario::new(ComputeModel::default());
    for i in 0..6 {
        sc.add_device(DeviceSpec {
            link: Link::new_ms(10.0 + i as f64 * 5.0, 1e6),
            strategy: Strategy::PriorTransfer {
                samples: 100 + 10 * i,
                dim,
                iterations: 50,
                em_rounds: 8,
                prior_components,
            },
        });
    }
    let report = sc.run();
    assert_eq!(report.devices.len(), 6);
    // Every device sent a request frame and received the prior frame.
    for d in &report.devices {
        assert_eq!(d.bytes_sent, REQUEST_BYTES);
        assert_eq!(d.bytes_received, prior_bytes);
        assert!(d.completion.as_micros() > 0);
    }
    // Longer links and bigger workloads finish strictly later.
    for w in report.devices.windows(2) {
        assert!(w[1].completion > w[0].completion);
    }
    assert_eq!(
        report.total_bytes,
        6 * (REQUEST_BYTES + prior_bytes),
        "aggregate bytes must equal the per-device sum"
    );
}

#[test]
fn simulator_bytes_match_the_real_wire_frames() {
    let (cloud_knowledge, dim) = fitted_cloud();
    let prior = cloud_knowledge.prior();
    let k = prior.num_components();

    // Encode the prior exactly as the serve layer would ship it…
    let payload = dro_edge::transfer::serialize_prior(prior);
    let response = dre_serve::frame::encode(&dre_serve::Message::PriorResponse { payload });
    let request = dre_serve::frame::encode(&dre_serve::Message::PriorRequest { task_id: 0 });

    // …and the simulator's cost model must charge those exact bytes.
    assert_eq!(request.len() as u64, REQUEST_BYTES);
    assert_eq!(
        response.len() as u64,
        prior_transfer_bytes(k, dim),
        "simulator payload bytes must equal the real PriorResponse frame"
    );

    let mut sc = Scenario::new(ComputeModel::default());
    sc.add_device(DeviceSpec {
        link: Link::new_ms(20.0, 1e6),
        strategy: Strategy::PriorTransfer {
            samples: 100,
            dim,
            iterations: 50,
            em_rounds: 5,
            prior_components: k,
        },
    });
    let report = sc.run();
    assert_eq!(report.devices[0].bytes_sent, request.len() as u64);
    assert_eq!(report.devices[0].bytes_received, response.len() as u64);
}

#[test]
fn keep_alive_client_mode_amortizes_handshakes_at_real_frame_sizes() {
    let (cloud_knowledge, dim) = fitted_cloud();
    let prior_components = cloud_knowledge.prior().num_components();

    // The simulator's report-leg bytes must equal the real framed
    // `ModelReport` for a packed `[w…, b]` model of this dimension.
    let report_frame = dre_serve::frame::encode(&dre_serve::Message::ModelReport {
        task_id: 0,
        device_id: 0,
        seq: 1,
        params: vec![0.0; dim + 1],
    });
    assert_eq!(report_frame.len() as u64, model_report_bytes(dim));

    // An outage forces three request attempts; the connection model then
    // separates the client modes: fresh-per-request redials per message,
    // keep-alive dials once — the amortization the real keep-alive
    // `PriorClient` buys.
    let run = |mode: ClientMode| {
        let mut sc = Scenario::new(ComputeModel::default())
            .with_retry(RetryModel {
                timeout: SimDuration::from_millis_f64(100.0),
                max_attempts: 4,
            })
            .with_outage(SimDuration::ZERO, SimDuration::from_millis_f64(250.0))
            .with_client_mode(mode);
        sc.add_device(DeviceSpec {
            link: Link::new_ms(30.0, 125_000.0),
            strategy: Strategy::PriorTransfer {
                samples: 100,
                dim,
                iterations: 50,
                em_rounds: 5,
                prior_components,
            },
        });
        sc.run()
    };
    let fresh = run(ClientMode::FreshPerRequest);
    let keep = run(ClientMode::KeepAlive);
    for r in [&fresh, &keep] {
        let d = &r.devices[0];
        assert_eq!(d.attempts, 3, "attempts 1–2 fall inside the outage window");
        assert_eq!(r.model_reports, 1);
        // Handshakes cost time, never bytes: both modes ship exactly
        // three real request frames and one real report frame.
        assert_eq!(d.bytes_sent, 3 * REQUEST_BYTES + model_report_bytes(dim));
        assert_eq!(d.bytes_received, prior_transfer_bytes(prior_components, dim));
    }
    assert_eq!(fresh.devices[0].handshakes, 4);
    assert_eq!(keep.devices[0].handshakes, 1);
    // Keep-alive's amortized handshake takes one round trip (2 × 30 ms)
    // off the critical path.
    assert_eq!(
        fresh.devices[0].completion.as_micros(),
        keep.devices[0].completion.as_micros() + 2 * 30_000
    );
}

#[test]
fn topology_transport_carries_the_real_prior_across_the_switch() {
    use dre_edgesim::{LossModel, SwitchConfig, Topology, ACK_BYTES};

    let (cloud_knowledge, dim) = fitted_cloud();
    let prior_components = cloud_knowledge.prior().num_components();
    let payload = prior_transfer_bytes(prior_components, dim);
    // A small MTU forces the fitted prior (~1.2 kB) into several
    // segments, exercising the go-back-N window.
    let mtu = 256u64;
    let segments = payload.div_ceil(mtu);
    assert!(
        segments > 1,
        "the fitted prior ({payload} B) must segment at mtu {mtu} to exercise go-back-N"
    );

    let mk = |topo: Option<Topology>| {
        let mut sc = Scenario::new(ComputeModel::default());
        if let Some(t) = topo {
            sc = sc.with_topology(t);
        }
        for i in 0..4 {
            sc.add_device(DeviceSpec {
                link: Link::new_ms(10.0 + i as f64, 1e6),
                strategy: Strategy::PriorTransfer {
                    samples: 100,
                    dim,
                    iterations: 50,
                    em_rounds: 5,
                    prior_components,
                },
            });
        }
        sc
    };

    let topo = Topology::one_big_switch(Link::new_ms(2.0, 1e8)).with_switch(SwitchConfig {
        mtu: mtu as u32,
        ..SwitchConfig::default()
    });
    let fabric = mk(Some(topo)).run();
    let legacy = mk(None).run();

    for d in &fabric.devices {
        // Out: one request frame plus one ack per payload segment.
        assert_eq!(d.bytes_sent, REQUEST_BYTES + segments * ACK_BYTES);
        // In: the request's ack plus the segmented payload itself.
        assert_eq!(d.bytes_received, ACK_BYTES + payload);
        assert!(d.completion.as_micros() > 0);
    }
    assert_eq!(fabric.messages_dropped, 0);
    assert_eq!(fabric.bytes_retransmitted, 0);
    // The fabric models costs the legacy pipe ignores: queueing,
    // serialization per hop, and transport acks.
    assert!(fabric.makespan > legacy.makespan);
    assert!(fabric.total_bytes > legacy.total_bytes);
    // Lossy replay is bit-identical at a fixed seed.
    let lossy = || {
        let t = Topology::one_big_switch(Link::new_ms(2.0, 1e8))
            .with_switch(SwitchConfig {
                queue_capacity: 8,
                mtu: mtu as u32,
                ..SwitchConfig::default()
            })
            .with_device_loss(LossModel::Bernoulli { loss: 0.1, seed: 3 });
        mk(Some(t)).run()
    };
    let a = lossy();
    assert!(a.bytes_retransmitted > 0, "10% loss must cost retransmissions");
    assert_eq!(a, lossy());
}
